// Integration tests: the ParalleX runtime end to end — localities, typed
// actions, parcels with continuations, AGAS migration with stale-cache
// forwarding, processes, and quiescence.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "core/action.hpp"
#include "core/process.hpp"
#include "core/runtime.hpp"

namespace {

using namespace px;
using core::runtime;
using core::runtime_params;

std::atomic<int> g_side_effect{0};

void bump(int amount) { g_side_effect.fetch_add(amount); }
PX_REGISTER_ACTION(bump)

int add(int a, int b) { return a + b; }
PX_REGISTER_ACTION(add)

int which_locality() {
  return static_cast<int>(core::this_locality()->id());
}
PX_REGISTER_ACTION(which_locality)

std::uint64_t fib(std::uint64_t n) {
  if (n < 2) return n;
  // Distribute the left branch to a pseudo-random locality; keep the right
  // branch local.  Classic message-driven recursive decomposition.
  core::locality* here = core::this_locality();
  runtime& rt = here->rt();
  const auto target = static_cast<gas::locality_id>(
      (n * 2654435761u) % rt.num_localities());
  auto left = core::async<&fib>(rt.locality_gid(target), n - 1);
  const std::uint64_t right = fib(n - 2);
  return left.get() + right;
}
PX_REGISTER_ACTION(fib)

runtime_params quick_params(std::size_t localities, unsigned workers = 2) {
  runtime_params p;
  p.localities = localities;
  p.workers_per_locality = workers;
  return p;
}

TEST(Runtime, StartsAndStopsCleanly) {
  runtime rt(quick_params(2));
  rt.start();
  rt.stop();
}

TEST(Runtime, RunExecutesRootAndQuiesces) {
  runtime rt(quick_params(2));
  std::atomic<bool> ran{false};
  rt.run([&] { ran.store(true); });
  EXPECT_TRUE(ran.load());
}

TEST(Runtime, ApplyRunsOnTargetLocality) {
  runtime rt(quick_params(4));
  g_side_effect.store(0);
  rt.run([&] {
    for (int i = 0; i < 4; ++i) {
      core::apply<&bump>(rt.locality_gid(i), 10);
    }
  });
  EXPECT_EQ(g_side_effect.load(), 40);
}

TEST(Runtime, AsyncReturnsRemoteResult) {
  runtime rt(quick_params(2));
  int result = 0;
  rt.run([&] {
    auto f = core::async<&add>(rt.locality_gid(1), 20, 22);
    result = f.get();
  });
  EXPECT_EQ(result, 42);
}

TEST(Runtime, AsyncLandsOnTheNamedLocality) {
  runtime rt(quick_params(4));
  std::vector<int> where(4, -1);
  rt.run([&] {
    for (int i = 0; i < 4; ++i) {
      where[i] = core::async<&which_locality>(rt.locality_gid(i)).get();
    }
  });
  EXPECT_EQ(where, (std::vector<int>{0, 1, 2, 3}));
}

TEST(Runtime, EagerFlushShipsIsolatedRequestImmediately) {
  // Isolated requests from an otherwise-idle locality: the first-parcel
  // eager flush must ship them from route() itself (the sender never has
  // to suspend and wait for the flush-on-idle pass), and the reply leg is
  // just as isolated, so both ports count eager flushes.  Several round
  // trips because any single one can lose the benign race where the
  // fabric progress thread's idle flush ships the frame first (counted as
  // a demand flush); all of them losing it is not a thing.
  runtime rt(quick_params(2, 1));
  int result = 0;
  rt.run([&] {
    for (int i = 0; i < 16; ++i) {
      result = core::async<&add>(rt.locality_gid(1), 20, i).get();
    }
  });
  EXPECT_EQ(result, 35);
  EXPECT_GE(rt.port(0).stats().eager_flushes, 1u);
  EXPECT_GE(rt.port(1).stats().eager_flushes, 1u);
}

TEST(Runtime, EagerFlushDisabledFallsBackToIdleFlush) {
  runtime_params p = quick_params(2, 1);
  p.parcel_eager_flush = 0;
  runtime rt(p);
  int result = 0;
  rt.run([&] {
    result = core::async<&add>(rt.locality_gid(1), 20, 22).get();
  });
  EXPECT_EQ(result, 42);
  EXPECT_EQ(rt.port(0).stats().eager_flushes, 0u);
  EXPECT_EQ(rt.port(1).stats().eager_flushes, 0u);
  // The parcels still left — through demand (idle/quiescence) flushes.
  EXPECT_GE(rt.port(0).stats().demand_flushes, 1u);
}

TEST(Runtime, DistributedFibonacci) {
  runtime rt(quick_params(4, 2));
  std::uint64_t result = 0;
  rt.run([&] {
    result = core::async<&fib>(rt.locality_gid(0), 16).get();
  });
  EXPECT_EQ(result, 987u);
}

TEST(Runtime, DistributedFibonacciWithLatency) {
  runtime_params p = quick_params(4, 2);
  p.fabric.base_latency_ns = 20'000;  // 20us per parcel hop
  runtime rt(p);
  std::uint64_t result = 0;
  rt.run([&] {
    result = core::async<&fib>(rt.locality_gid(0), 12).get();
  });
  EXPECT_EQ(result, 144u);
}

TEST(Runtime, LocalityGidsAreRegisteredNames) {
  runtime rt(quick_params(3));
  auto g0 = rt.names().lookup("hw/locality/0");
  auto g2 = rt.names().lookup("hw/locality/2");
  ASSERT_TRUE(g0.has_value());
  ASSERT_TRUE(g2.has_value());
  EXPECT_EQ(*g0, rt.locality_gid(0));
  EXPECT_EQ(*g2, rt.locality_gid(2));
  EXPECT_EQ(g0->kind(), gas::gid_kind::hardware);
}

// ------------------------------------------------------- object migration

struct counter_object {
  std::atomic<int> hits{0};
};

void hit_counter(std::uint64_t gid_bits) {
  auto* here = core::this_locality();
  auto obj = std::static_pointer_cast<counter_object>(
      here->get_object(gas::gid::from_bits(gid_bits)));
  ASSERT_NE(obj, nullptr);  // delivery path must have routed us correctly
  obj->hits.fetch_add(1);
}
PX_REGISTER_ACTION(hit_counter)

TEST(Runtime, ParcelsFollowMigratedObjects) {
  runtime rt(quick_params(3));
  rt.start();
  const gas::gid obj = rt.new_object<counter_object>(0);

  rt.run([&] { core::apply<&hit_counter>(obj, obj.bits()); });
  EXPECT_EQ(rt.get_local<counter_object>(0, obj)->hits.load(), 1);

  // Warm locality 1's AGAS cache, then migrate away and send again from
  // locality 1: the parcel lands on the stale owner and must be forwarded.
  rt.migrate_object<counter_object>(obj, 2);
  rt.run([&] { core::apply<&hit_counter>(obj, obj.bits()); });
  auto moved = rt.get_local<counter_object>(2, obj);
  ASSERT_NE(moved, nullptr);
  EXPECT_EQ(moved->hits.load(), 2);
  EXPECT_FALSE(rt.at(0).has_object(obj));
}

TEST(Runtime, ForwardBoundDropsWithDiagnostic) {
  runtime_params p = quick_params(2);
  p.max_forwards = 4;
  runtime rt(p);
  rt.start();
  const gas::gid obj = rt.new_object<counter_object>(1);

  // A parcel already past the hop bound is dropped, not bounced or
  // asserted on.
  parcel::parcel over;
  over.destination = obj;
  over.action = core::action<&hit_counter>::id();
  over.arguments = util::to_bytes(std::tuple<std::uint64_t>(obj.bits()));
  over.source = 0;
  over.forwards = 5;  // > max_forwards
  rt.route(0, std::move(over));
  rt.wait_quiescent();
  EXPECT_EQ(rt.at(0).stats().parcels_dropped, 1u);
  EXPECT_EQ(rt.get_local<counter_object>(1, obj)->hits.load(), 0);
}

std::atomic<int> g_chase_dispatched{0};

void chase_counter(std::uint64_t gid_bits) {
  // Tolerates the documented erase/rebind window: migration may leave the
  // object momentarily absent at its authoritative owner, in which case
  // the dispatch still counts (the parcel was not lost).
  auto obj = std::static_pointer_cast<counter_object>(
      core::this_locality()->get_object(gas::gid::from_bits(gid_bits)));
  if (obj != nullptr) obj->hits.fetch_add(1);
  g_chase_dispatched.fetch_add(1);
}
PX_REGISTER_ACTION(chase_counter)

TEST(Runtime, MigrationUnderLoadNeverWedgesOrCrashes) {
  // Regression for the forward bound: hammer an object with parcels while
  // it migrates between localities.  Some parcels chase the object through
  // stale caches; every one must end dispatched or cleanly dropped (the
  // pre-bound code asserted out at 8 hops), and quiescence must still
  // terminate.
  runtime_params p = quick_params(3, 2);
  p.max_forwards = 3;
  runtime rt(p);
  rt.start();
  const gas::gid obj = rt.new_object<counter_object>(0);
  constexpr int kParcels = 300;
  g_chase_dispatched.store(0);

  rt.run([&] {
    for (int i = 0; i < kParcels; ++i) {
      core::apply<&chase_counter>(obj, obj.bits());
      if (i % 25 == 24) {
        rt.migrate_object<counter_object>(
            obj, static_cast<gas::locality_id>((i / 25) % 3));
      }
    }
  });

  std::uint64_t dropped = 0;
  for (gas::locality_id l = 0; l < 3; ++l) {
    dropped += rt.at(l).stats().parcels_dropped;
  }
  // Conservation: every parcel either reached a dispatch or was dropped at
  // the forward bound — none lost, no assert-crash, no wedge.
  EXPECT_EQ(static_cast<std::uint64_t>(g_chase_dispatched.load()) + dropped,
            static_cast<std::uint64_t>(kParcels));
  EXPECT_GT(g_chase_dispatched.load(), 0);
}

TEST(Runtime, CoalescedParcelsAllArriveAndQuiesce) {
  // Thresholds too large to trip on byte/count: delivery relies entirely
  // on the flush-on-idle hook and the quiescence loop's forced flush —
  // the paths that keep wait_quiescent sound with batching enabled.
  // (How *much* coalescing happens here is timing-dependent; the
  // deterministic frames-vs-parcels check lives in
  // ParcelPortCoalescesDeterministically.)
  runtime_params p = quick_params(4, 2);
  p.parcel_flush_bytes = 1 << 20;
  p.parcel_flush_count = 100000;
  runtime rt(p);
  g_side_effect.store(0);
  rt.run([&] {
    for (int round = 0; round < 50; ++round) {
      for (int i = 0; i < 4; ++i) {
        core::apply<&bump>(rt.locality_gid(i), 1);
      }
    }
  });
  EXPECT_EQ(g_side_effect.load(), 200);
  EXPECT_EQ(rt.port(0).pending(), 0u);
  EXPECT_EQ(rt.port(0).stats().parcels_enqueued, 150u);  // 3 remote dests
}

TEST(Runtime, ParcelPortCoalescesDeterministically) {
  // Drive a port directly against a bare fabric: no schedulers and no
  // runtime idle backstop, so the frame accounting is exact.
  net::fabric_params fp;
  fp.endpoints = 2;
  net::fabric fabric(fp);
  std::atomic<std::uint64_t> parcels_received{0};
  std::atomic<std::uint64_t> frames_received{0};
  fabric.set_handler(0, [](net::message&) {});
  fabric.set_handler(1, [&](net::message& m) {
    const auto frame = parcel::frame_view::parse(m.payload);
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->count(), m.units);
    parcels_received.fetch_add(m.units);
    frames_received.fetch_add(1);
  });

  core::parcel_port_params pp;
  pp.flush_bytes = 1 << 20;
  pp.flush_count = 10;
  core::parcel_port port(fabric, 0, pp);
  parcel::parcel t;
  t.destination = gas::gid::make(gas::gid_kind::data, 1, 1);
  t.action = 1;
  for (int i = 0; i < 25; ++i) port.enqueue(1, t);
  EXPECT_EQ(port.pending(), 5u);  // two threshold flushes of 10 shipped
  port.flush_all();
  EXPECT_EQ(port.pending(), 0u);
  fabric.drain();
  EXPECT_EQ(parcels_received.load(), 25u);
  EXPECT_EQ(frames_received.load(), 3u);  // 10 + 10 + 5
  const auto st = port.stats();
  EXPECT_EQ(st.parcels_enqueued, 25u);
  EXPECT_EQ(st.frames_sent, 3u);
  EXPECT_EQ(st.threshold_flushes, 2u);
  EXPECT_EQ(st.demand_flushes, 1u);
}

TEST(Runtime, MaxForwardsIsClampedBelowCounterWrap) {
  runtime_params p = quick_params(2);
  p.max_forwards = 255;  // would be unreachable for the u8 hop counter
  runtime rt(p);
  EXPECT_EQ(rt.params().max_forwards, 254);
}

TEST(Runtime, CoalescingDisabledMatchesSemantics) {
  runtime_params p = quick_params(3, 2);
  p.parcel_flush_count = 1;  // every parcel ships as its own frame
  runtime rt(p);
  g_side_effect.store(0);
  rt.run([&] {
    for (int i = 0; i < 60; ++i) {
      core::apply<&bump>(rt.locality_gid(i % 3), 2);
    }
  });
  EXPECT_EQ(g_side_effect.load(), 120);
  const auto st0 = rt.port(0).stats();
  EXPECT_EQ(st0.parcels_enqueued, st0.frames_sent);
}

TEST(Runtime, StaleCacheForwardingDelivers) {
  runtime rt(quick_params(3));
  rt.start();
  const gas::gid obj = rt.new_object<counter_object>(1);

  // Populate locality 0's cache with owner=1.
  rt.run([&] { core::apply<&hit_counter>(obj, obj.bits()); });
  // Move to 2; locality 0 still believes 1.
  rt.migrate_object<counter_object>(obj, 2);
  auto cached = rt.gas().resolve(0, obj);
  ASSERT_TRUE(cached.has_value());

  rt.run([&] { core::apply<&hit_counter>(obj, obj.bits()); });
  EXPECT_EQ(rt.get_local<counter_object>(2, obj)->hits.load(), 2);
  // The forward refreshed the authoritative route.
  EXPECT_EQ(rt.gas().resolve_authoritative(0, obj).value(), 2u);
}

// ---------------------------------------------------------------- process

TEST(Process, TerminationDetectsNestedChildren) {
  runtime rt(quick_params(3));
  rt.start();
  auto proc = core::create_process(rt, {0, 1, 2});
  std::atomic<int> work{0};

  rt.run([&] {
    for (int i = 0; i < 3; ++i) {
      proc->spawn_any([&, proc] {
        work.fetch_add(1);
        // Nested (grandchild) work, spawned from inside a child.
        proc->spawn_any([&] { work.fetch_add(10); });
      });
    }
    proc->seal();
    proc->terminated().wait();
    EXPECT_EQ(work.load(), 33);
  });
  EXPECT_EQ(proc->children_spawned(), 6u);
}

TEST(Process, IsAddressableInTheGlobalNamespace) {
  runtime rt(quick_params(2));
  rt.start();
  auto proc = core::create_process(rt, {0, 1});
  EXPECT_EQ(proc->id().kind(), gas::gid_kind::process);
  auto obj = rt.at(0).get_object(proc->id());
  EXPECT_EQ(obj.get(), proc.get());
  proc->seal();
  proc->terminated().wait();
}

}  // namespace
