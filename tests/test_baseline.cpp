// Tests: the CSP/message-passing baseline runtime.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "baseline/csp.hpp"

namespace {

using namespace px;
using baseline::csp_params;
using baseline::csp_runtime;
using baseline::rank_context;

csp_params quick(std::size_t ranks) {
  csp_params p;
  p.ranks = ranks;
  return p;
}

TEST(Csp, PingPong) {
  csp_runtime rt(quick(2));
  std::atomic<int> got{0};
  rt.run([&](rank_context& ctx) {
    if (ctx.rank() == 0) {
      ctx.send_value(1, 7, 123);
      got.store(ctx.recv_value<int>(1, 8));
    } else {
      const int v = ctx.recv_value<int>(0, 7);
      ctx.send_value(0, 8, v + 1);
    }
  });
  EXPECT_EQ(got.load(), 124);
}

TEST(Csp, RecvMatchesOnSourceAndTag) {
  csp_runtime rt(quick(3));
  std::atomic<int> from1{0}, from2{0};
  rt.run([&](rank_context& ctx) {
    if (ctx.rank() == 0) {
      // Receive rank 2's message first even if rank 1's arrived earlier.
      from2.store(ctx.recv_value<int>(2, 5));
      from1.store(ctx.recv_value<int>(1, 5));
    } else {
      ctx.send_value(0, 5, ctx.rank() * 10);
    }
  });
  EXPECT_EQ(from1.load(), 10);
  EXPECT_EQ(from2.load(), 20);
}

TEST(Csp, WildcardSource) {
  csp_runtime rt(quick(4));
  std::atomic<int> sum{0};
  rt.run([&](rank_context& ctx) {
    if (ctx.rank() == 0) {
      int s = 0;
      for (int i = 1; i < ctx.size(); ++i) s += ctx.recv_value<int>(-1, 1);
      sum.store(s);
    } else {
      ctx.send_value(0, 1, ctx.rank());
    }
  });
  EXPECT_EQ(sum.load(), 6);
}

TEST(Csp, BarrierSynchronizesPhases) {
  csp_runtime rt(quick(4));
  std::atomic<int> phase1{0};
  std::atomic<bool> violated{false};
  rt.run([&](rank_context& ctx) {
    phase1.fetch_add(1);
    ctx.barrier();
    if (phase1.load() != 4) violated.store(true);
    ctx.barrier();
  });
  EXPECT_FALSE(violated.load());
}

TEST(Csp, RepeatedBarriersDoNotCrossMatch) {
  csp_runtime rt(quick(3));
  std::atomic<int> rounds_done{0};
  rt.run([&](rank_context& ctx) {
    for (int r = 0; r < 25; ++r) ctx.barrier();
    rounds_done.fetch_add(1);
  });
  EXPECT_EQ(rounds_done.load(), 3);
}

TEST(Csp, AllreduceSum) {
  csp_runtime rt(quick(5));
  std::atomic<int> correct{0};
  rt.run([&](rank_context& ctx) {
    const double total = ctx.allreduce_sum(static_cast<double>(ctx.rank()));
    if (total == 10.0) correct.fetch_add(1);  // 0+1+2+3+4
  });
  EXPECT_EQ(correct.load(), 5);
}

TEST(Csp, SelfSendBypassesFabric) {
  csp_runtime rt(quick(2));
  std::atomic<int> got{0};
  rt.run([&](rank_context& ctx) {
    if (ctx.rank() == 0) {
      ctx.send_value(0, 3, 55);
      got.store(ctx.recv_value<int>(0, 3));
    }
  });
  EXPECT_EQ(got.load(), 55);
  EXPECT_EQ(rt.fabric().stats(0).messages_sent, 0u);
}

TEST(Csp, LatencyIsImposedOnBlockingRecv) {
  csp_params p = quick(2);
  p.fabric.base_latency_ns = 2'000'000;  // 2ms
  csp_runtime rt(p);
  std::atomic<std::int64_t> wait_us{0};
  rt.run([&](rank_context& ctx) {
    if (ctx.rank() == 0) {
      ctx.send_value(1, 1, 0);
    } else {
      const auto start = std::chrono::steady_clock::now();
      (void)ctx.recv_value<int>(0, 1);
      wait_us.store(std::chrono::duration_cast<std::chrono::microseconds>(
                        std::chrono::steady_clock::now() - start)
                        .count());
    }
  });
  EXPECT_GE(wait_us.load(), 1000);
}

TEST(Csp, RingPassesTokenAround) {
  csp_runtime rt(quick(6));
  std::atomic<int> final_value{0};
  rt.run([&](rank_context& ctx) {
    const int next = (ctx.rank() + 1) % ctx.size();
    const int prev = (ctx.rank() + ctx.size() - 1) % ctx.size();
    if (ctx.rank() == 0) {
      ctx.send_value(next, 2, 1);
      final_value.store(ctx.recv_value<int>(prev, 2));
    } else {
      const int v = ctx.recv_value<int>(prev, 2);
      ctx.send_value(next, 2, v + 1);
    }
  });
  EXPECT_EQ(final_value.load(), 6);
}

}  // namespace
