// Unit tests: util — serialization, histograms, RNG, config, queues, table.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "util/config.hpp"
#include "util/histogram.hpp"
#include "util/mpsc_queue.hpp"
#include "util/rng.hpp"
#include "util/serialize.hpp"
#include "util/spinlock.hpp"
#include "util/table.hpp"
#include "util/ws_deque.hpp"

namespace {

using namespace px::util;

// ----------------------------------------------------------- serialization

struct custom_point {
  double x = 0, y = 0;
  std::string label;
  bool operator==(const custom_point&) const = default;
};

template <typename Ar>
void serialize(Ar& ar, custom_point& p) {
  ar& p.x& p.y& p.label;
}

TEST(Serialize, RoundTripsArithmetic) {
  auto bytes = to_bytes(std::int32_t{-7}, std::uint64_t{1ull << 40}, 2.5);
  input_archive in(bytes);
  std::int32_t a = 0;
  std::uint64_t b = 0;
  double c = 0;
  in& a& b& c;
  EXPECT_EQ(a, -7);
  EXPECT_EQ(b, 1ull << 40);
  EXPECT_EQ(c, 2.5);
  EXPECT_TRUE(in.exhausted());
}

TEST(Serialize, RoundTripsContainers) {
  std::vector<std::string> v{"alpha", "", "gamma"};
  std::vector<double> d{1.0, -2.0, 3.5};
  auto bytes = to_bytes(v, d);
  input_archive in(bytes);
  std::vector<std::string> v2;
  std::vector<double> d2;
  in& v2& d2;
  EXPECT_EQ(v, v2);
  EXPECT_EQ(d, d2);
}

TEST(Serialize, RoundTripsCustomTypeAndTuple) {
  custom_point p{3.0, -4.0, "origin-ish"};
  std::tuple<int, custom_point, std::optional<int>> t{5, p, std::nullopt};
  auto bytes = to_bytes(t);
  auto t2 = from_bytes<std::tuple<int, custom_point, std::optional<int>>>(bytes);
  EXPECT_EQ(std::get<0>(t2), 5);
  EXPECT_EQ(std::get<1>(t2), p);
  EXPECT_FALSE(std::get<2>(t2).has_value());
}

TEST(Serialize, OptionalWithValue) {
  std::optional<std::string> o{"present"};
  auto bytes = to_bytes(o);
  EXPECT_EQ(from_bytes<std::optional<std::string>>(bytes), o);
}

TEST(Serialize, EmptyVector) {
  std::vector<int> empty;
  auto bytes = to_bytes(empty);
  EXPECT_EQ(from_bytes<std::vector<int>>(bytes), empty);
}

// Property: encode/decode is identity over random payload shapes.
class SerializeProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SerializeProperty, VectorOfPairsRoundTrip) {
  xoshiro256 rng(GetParam());
  std::vector<std::pair<std::uint64_t, std::string>> data;
  const auto n = rng.below(64);
  for (std::uint64_t i = 0; i < n; ++i) {
    std::string s(rng.below(32), 'x');
    for (auto& ch : s) ch = static_cast<char>('a' + rng.below(26));
    data.emplace_back(rng(), s);
  }
  auto bytes = to_bytes(data);
  auto back =
      from_bytes<std::vector<std::pair<std::uint64_t, std::string>>>(bytes);
  EXPECT_EQ(data, back);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializeProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ---------------------------------------------------------------- stats

TEST(RunningStats, MeanVarianceMinMax) {
  running_stats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_EQ(s.count(), 8u);
}

TEST(RunningStats, MergeMatchesSequential) {
  running_stats a, b, all;
  xoshiro256 rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-5, 20);
    (i % 2 == 0 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
}

TEST(LogHistogram, QuantilesWithinBucketError) {
  log_histogram h;
  for (int i = 1; i <= 1000; ++i) h.add(static_cast<double>(i));
  // p50 ~ 500; bucket quantization allows up to 2x error.
  EXPECT_GE(h.p50(), 250.0);
  EXPECT_LE(h.p50(), 1000.0);
  EXPECT_GE(h.p99(), 500.0);
  EXPECT_EQ(h.count(), 1000u);
}

TEST(LogHistogram, ZeroBucketReportsZeroNotMidpoint) {
  // An all-zero distribution has every quantile at 0 — the [0,1) bucket
  // must not interpolate to its midpoint.
  log_histogram h;
  for (int i = 0; i < 100; ++i) h.add(0.0);
  EXPECT_EQ(h.p50(), 0.0);
  EXPECT_EQ(h.p999(), 0.0);
  // Mixed: with 90% zeros, p50 stays 0 while the tail sees the spikes.
  log_histogram m;
  for (int i = 0; i < 90; ++i) m.add(0.0);
  for (int i = 0; i < 10; ++i) m.add(1000.0);
  EXPECT_EQ(m.p50(), 0.0);
  EXPECT_GE(m.p999(), 500.0);
  // Empty histogram: quantiles are 0, never NaN or a bucket artifact.
  EXPECT_EQ(log_histogram{}.p99(), 0.0);
}

TEST(LogHistogram, SnapshotIsDetachedAndConcurrentSafe) {
  log_histogram h;
  for (int i = 1; i <= 64; ++i) h.add(static_cast<double>(i));
  const log_histogram snap = h.snapshot();
  EXPECT_EQ(snap.count(), 64u);
  // Later adds don't bleed into the snapshot — it's a plain value.
  for (int i = 0; i < 1000; ++i) h.add(1e9);
  EXPECT_EQ(snap.count(), 64u);
  EXPECT_LE(snap.p999(), 128.0);
  // Writers and snapshotters race safely (the sampler-thread shape);
  // every snapshot is internally consistent: count matches stats count.
  log_histogram shared;
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    std::uint64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      shared.add(static_cast<double>(i++ % 1000));
    }
  });
  for (int i = 0; i < 2000; ++i) {
    const log_histogram s = shared.snapshot();
    EXPECT_EQ(s.count(), s.stats().count());
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
}

// ------------------------------------------------------------------ rng

TEST(Rng, DeterministicPerSeed) {
  xoshiro256 a(42), b(42), c(43);
  EXPECT_EQ(a(), b());
  xoshiro256 a2(42);
  (void)c;
  std::vector<std::uint64_t> s1, s2;
  for (int i = 0; i < 16; ++i) s1.push_back(a2());
  xoshiro256 a3(42);
  for (int i = 0; i < 16; ++i) s2.push_back(a3());
  EXPECT_EQ(s1, s2);
}

TEST(Rng, BelowIsInRangeAndCoversValues) {
  xoshiro256 rng(1);
  std::map<std::uint64_t, int> seen;
  for (int i = 0; i < 1000; ++i) seen[rng.below(7)]++;
  EXPECT_EQ(seen.size(), 7u);
  for (const auto& [v, n] : seen) {
    EXPECT_LT(v, 7u);
    EXPECT_GT(n, 50);  // roughly uniform
  }
}

TEST(Rng, SplitStreamsDiffer) {
  xoshiro256 parent(9);
  auto c1 = parent.split(1);
  auto c2 = parent.split(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (c1() == c2()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, ExponentialHasRequestedMean) {
  xoshiro256 rng(5);
  double sum = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) sum += rng.exponential(10.0);
  EXPECT_NEAR(sum / kN, 10.0, 0.5);
}

// ---------------------------------------------------------------- config

TEST(Config, TypedAccessorsAndFallbacks) {
  config c;
  c.set("a.int", std::int64_t{42});
  c.set("a.str", "hello");
  c.set("a.bool", true);
  c.set("a.dbl", 2.5);
  EXPECT_EQ(c.get_int("a.int", 0), 42);
  EXPECT_EQ(c.get_string("a.str", ""), "hello");
  EXPECT_TRUE(c.get_bool("a.bool", false));
  EXPECT_DOUBLE_EQ(c.get_double("a.dbl", 0), 2.5);
  EXPECT_EQ(c.get_int("missing", -1), -1);
  EXPECT_FALSE(c.contains("missing"));
}

TEST(Config, EnvNameMapping) {
  EXPECT_EQ(config::env_name_for("scheduler.workers"), "PX_SCHEDULER_WORKERS");
}

// Regression: the environment loader flattens every '_' to '.', so a key
// whose last segment contains an underscore ("rebalance.min_depth", from
// PX_REBALANCE_MIN_DEPTH) must still find the normalized entry — these
// tuning knobs were silently dead otherwise.
TEST(Config, UnderscoreKeysFindEnvDerivedEntries) {
  config c;
  c.set("rebalance.min.depth", std::int64_t{7});  // as load_environment stores
  c.set("parcel.eager.flush", false);
  EXPECT_EQ(c.get_int("rebalance.min_depth", 0), 7);
  EXPECT_FALSE(c.get_bool("parcel.eager_flush", true));
  // An exact-key set() still wins over the normalized spelling.
  c.set("rebalance.min_depth", std::int64_t{9});
  EXPECT_EQ(c.get_int("rebalance.min_depth", 0), 9);
}

TEST(Config, LoadEnvironmentPicksUpPxVariables) {
  ::setenv("PX_TEST_UNDERSCORE_KNOB", "123", 1);
  config c;
  c.load_environment();
  EXPECT_EQ(c.get_int("test.underscore.knob", 0), 123);
  // The spelling a caller would naturally use for a two-word field.
  EXPECT_EQ(c.get_int("test.underscore_knob", 0), 123);
  ::unsetenv("PX_TEST_UNDERSCORE_KNOB");
}

TEST(Config, MalformedNumbersFallBack) {
  config c;
  c.set("k", "not-a-number");
  EXPECT_EQ(c.get_int("k", 5), 5);
  EXPECT_EQ(c.get_double("k", 1.5), 1.5);
}

// ------------------------------------------------------------- ws_deque

TEST(WsDeque, LifoForOwnerFifoForThief) {
  ws_deque<int*> d;
  int items[4] = {0, 1, 2, 3};
  for (auto& i : items) d.push(&i);
  EXPECT_EQ(d.steal().value(), &items[0]);  // oldest
  EXPECT_EQ(d.pop().value(), &items[3]);    // newest
  EXPECT_EQ(d.pop().value(), &items[2]);
  EXPECT_EQ(d.steal().value(), &items[1]);
  EXPECT_FALSE(d.pop().has_value());
  EXPECT_FALSE(d.steal().has_value());
}

TEST(WsDeque, GrowsPastInitialCapacity) {
  ws_deque<int*> d(4);
  std::vector<int> storage(1000);
  for (auto& x : storage) d.push(&x);
  for (int i = 999; i >= 0; --i) {
    auto got = d.pop();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, &storage[static_cast<std::size_t>(i)]);
  }
}

TEST(WsDeque, ConcurrentStealersLoseNothing) {
  ws_deque<std::uintptr_t*> d;
  constexpr std::uintptr_t kN = 100000;
  std::atomic<std::uint64_t> taken{0};
  std::atomic<bool> done_pushing{false};

  std::vector<std::thread> thieves;
  for (int t = 0; t < 3; ++t) {
    thieves.emplace_back([&] {
      while (!done_pushing.load() || d.size_estimate() > 0) {
        if (d.steal()) taken.fetch_add(1);
      }
    });
  }
  for (std::uintptr_t i = 1; i <= kN; ++i) {
    d.push(reinterpret_cast<std::uintptr_t*>(i));
    if (i % 16 == 0) {
      if (d.pop()) taken.fetch_add(1);
    }
  }
  done_pushing.store(true);
  for (auto& t : thieves) t.join();
  while (d.pop()) taken.fetch_add(1);
  EXPECT_EQ(taken.load(), kN);
}

// ------------------------------------------------------------ mpsc queue

struct test_node {
  std::atomic<test_node*> next{nullptr};
  int value = 0;
};

TEST(MpscQueue, FifoSingleProducer) {
  intrusive_mpsc_queue<test_node> q;
  test_node nodes[8];
  for (int i = 0; i < 8; ++i) {
    nodes[i].value = i;
    q.push(&nodes[i]);
  }
  for (int i = 0; i < 8; ++i) {
    test_node* n = q.pop();
    ASSERT_NE(n, nullptr);
    EXPECT_EQ(n->value, i);
  }
  EXPECT_EQ(q.pop(), nullptr);
}

TEST(MpscQueue, ManyProducersOneConsumer) {
  intrusive_mpsc_queue<test_node> q;
  constexpr int kPerProducer = 20000;
  constexpr int kProducers = 4;
  // test_node is immovable (atomic member); use fixed arrays.
  std::vector<std::unique_ptr<test_node[]>> storage;
  for (int p = 0; p < kProducers; ++p) {
    storage.push_back(std::make_unique<test_node[]>(kPerProducer));
  }

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        storage[static_cast<std::size_t>(p)][i].value = 1;
        q.push(&storage[static_cast<std::size_t>(p)][i]);
      }
    });
  }
  std::uint64_t got = 0;
  while (got < kPerProducer * kProducers) {
    if (q.pop() != nullptr) ++got;
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(got, static_cast<std::uint64_t>(kPerProducer * kProducers));
  EXPECT_EQ(q.pop(), nullptr);
}

TEST(BlockingQueue, CloseReleasesBlockedPop) {
  blocking_queue<int> q;
  std::thread t([&] {
    auto v = q.pop();
    EXPECT_FALSE(v.has_value());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.close();
  t.join();
}

// ---------------------------------------------------------------- table

TEST(TextTable, RendersAlignedWithHeaders) {
  text_table t({"name", "value"});
  t.add_row("alpha", 1);
  t.add_row("bb", 2.5);
  const std::string s = t.render("Title");
  EXPECT_NE(s.find("Title"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("2.5"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TextTable, CsvOutput) {
  text_table t({"a", "b"});
  t.add_row(1, 2);
  EXPECT_EQ(t.render_csv(), "a,b\n1,2\n");
}

TEST(SiFormat, ScalesUnits) {
  EXPECT_EQ(si_format(1.5e18, "FLOPS"), "1.5 EFLOPS");
  EXPECT_EQ(si_format(4e15, "B"), "4 PB");
  EXPECT_EQ(si_format(10e12, "FLOPS"), "10 TFLOPS");
}

// --------------------------------------------------------------- spinlock

TEST(Spinlock, MutualExclusionUnderContention) {
  spinlock lock;
  std::int64_t counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 50000; ++i) {
        std::lock_guard guard(lock);
        ++counter;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, 200000);
}

}  // namespace
