// Unit tests: parcel encoding and the action registry.
#include <gtest/gtest.h>

#include "parcel/action_registry.hpp"
#include "parcel/parcel.hpp"

namespace {

using namespace px;
using namespace px::parcel;

TEST(Parcel, EncodeDecodeIdentity) {
  parcel::parcel p;
  p.destination = gas::gid::make(gas::gid_kind::data, 3, 42);
  p.action = 7;
  p.cont.target = gas::gid::make(gas::gid_kind::lco, 1, 9);
  p.cont.action = 2;
  p.arguments = util::to_bytes(std::string("payload"), 123);
  p.source = 5;
  p.forwards = 2;

  const auto bytes = encode(p);
  const parcel::parcel q = decode(bytes);
  EXPECT_EQ(q.destination, p.destination);
  EXPECT_EQ(q.action, p.action);
  EXPECT_EQ(q.cont.target, p.cont.target);
  EXPECT_EQ(q.cont.action, p.cont.action);
  EXPECT_EQ(q.arguments, p.arguments);
  EXPECT_EQ(q.source, p.source);
  EXPECT_EQ(q.forwards, p.forwards);
}

TEST(Parcel, ContinuationValidity) {
  continuation c;
  EXPECT_FALSE(c.valid());
  c.target = gas::gid::make(gas::gid_kind::lco, 0, 1);
  EXPECT_TRUE(c.valid());
}

TEST(ActionRegistry, RegisterDispatchByIdAndName) {
  action_registry reg;
  int hits = 0;
  void* seen_ctx = nullptr;
  const action_id id = reg.register_action(
      "test.hello", [&](void* ctx, parcel::parcel) {
        ++hits;
        seen_ctx = ctx;
      });
  EXPECT_EQ(reg.find("test.hello").value(), id);
  EXPECT_EQ(reg.name_of(id), "test.hello");
  EXPECT_FALSE(reg.find("test.absent").has_value());

  parcel::parcel p;
  p.action = id;
  int ctx_obj = 0;
  reg.dispatch(&ctx_obj, std::move(p));
  EXPECT_EQ(hits, 1);
  EXPECT_EQ(seen_ctx, &ctx_obj);
}

TEST(ActionRegistry, IdsAreSequentialFromOne) {
  action_registry reg;
  const auto a = reg.register_action("a", [](void*, parcel::parcel) {});
  const auto b = reg.register_action("b", [](void*, parcel::parcel) {});
  EXPECT_EQ(a, 1u);
  EXPECT_EQ(b, 2u);
  EXPECT_EQ(reg.size(), 2u);
}

TEST(ActionRegistry, GlobalIsSingleton) {
  EXPECT_EQ(&action_registry::global(), &action_registry::global());
}

}  // namespace
