// Unit tests: parcel wire format (records, batch frames, zero-copy views)
// and the action registry.
#include <gtest/gtest.h>

#include <cstring>

#include "parcel/action_registry.hpp"
#include "parcel/migration.hpp"
#include "parcel/parcel.hpp"

namespace {

using namespace px;
using namespace px::parcel;

parcel::parcel sample_parcel(int salt = 0) {
  parcel::parcel p;
  p.destination = gas::gid::make(gas::gid_kind::data, 3, 42 + salt);
  p.action = 7 + static_cast<action_id>(salt);
  p.cont.target = gas::gid::make(gas::gid_kind::lco, 1, 9);
  p.cont.action = 2;
  p.arguments = util::to_bytes(std::string("payload"), 123 + salt);
  p.source = 5;
  p.forwards = 2;
  return p;
}

void expect_equal(const parcel::parcel& a, const parcel::parcel& b) {
  EXPECT_EQ(a.destination, b.destination);
  EXPECT_EQ(a.action, b.action);
  EXPECT_EQ(a.cont.target, b.cont.target);
  EXPECT_EQ(a.cont.action, b.cont.action);
  EXPECT_EQ(a.arguments, b.arguments);
  EXPECT_EQ(a.source, b.source);
  EXPECT_EQ(a.forwards, b.forwards);
}

// ------------------------------------------------------------ record wire

TEST(Parcel, RecordRoundTripIdentity) {
  const parcel::parcel p = sample_parcel();
  std::vector<std::byte> buf;
  encode_into(buf, p);
  EXPECT_EQ(buf.size(), encoded_size(p));

  const auto v = parcel_view::parse(buf);
  ASSERT_TRUE(v.has_value());
  expect_equal(v->to_parcel(), p);
}

TEST(Parcel, ViewReadsArgumentsInPlace) {
  const parcel::parcel p = sample_parcel();
  std::vector<std::byte> buf;
  encode_into(buf, p);
  const auto v = parcel_view::parse(buf);
  ASSERT_TRUE(v.has_value());
  // Zero-copy: the argument span must alias the encode buffer.
  EXPECT_GE(v->arguments().data(), buf.data());
  EXPECT_LE(v->arguments().data() + v->arguments().size(),
            buf.data() + buf.size());
  EXPECT_EQ(v->arguments().size(), p.arguments.size());
  EXPECT_EQ(std::memcmp(v->arguments().data(), p.arguments.data(),
                        p.arguments.size()),
            0);
}

TEST(Parcel, ViewOfBorrowsWithoutCopy) {
  const parcel::parcel p = sample_parcel();
  const parcel_view v = parcel_view::of(p);
  EXPECT_EQ(v.destination(), p.destination);
  EXPECT_EQ(v.arguments().data(), p.arguments.data());  // same storage
}

TEST(Parcel, TruncatedRecordRejected) {
  std::vector<std::byte> buf;
  encode_into(buf, sample_parcel());
  // Every strict prefix must be rejected: either the header is short or
  // the argument length no longer matches the record size.
  for (std::size_t n = 0; n < buf.size(); ++n) {
    EXPECT_FALSE(parcel_view::parse(std::span(buf.data(), n)).has_value())
        << "prefix of " << n << " bytes parsed";
  }
}

TEST(Parcel, RecordWithOversizedTailRejected) {
  std::vector<std::byte> buf;
  encode_into(buf, sample_parcel());
  buf.push_back(std::byte{0});  // arg_len no longer matches
  EXPECT_FALSE(parcel_view::parse(buf).has_value());
}

TEST(Parcel, EncodeIntoAppends) {
  std::vector<std::byte> buf;
  const parcel::parcel a = sample_parcel(1);
  const parcel::parcel b = sample_parcel(2);
  encode_into(buf, a);
  const std::size_t split = buf.size();
  encode_into(buf, b);
  const auto va = parcel_view::parse(std::span(buf.data(), split));
  const auto vb =
      parcel_view::parse(std::span(buf.data() + split, buf.size() - split));
  ASSERT_TRUE(va.has_value());
  ASSERT_TRUE(vb.has_value());
  expect_equal(va->to_parcel(), a);
  expect_equal(vb->to_parcel(), b);
}

// ------------------------------------------------------------ batch frame

TEST(ParcelFrame, EmptyFrameRoundTrip) {
  std::vector<std::byte> buf;
  frame_begin(buf);
  EXPECT_EQ(buf.size(), frame_header_bytes);
  EXPECT_EQ(frame_count(buf), 0u);
  const auto frame = frame_view::parse(buf);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->count(), 0u);
  EXPECT_FALSE(frame->begin() != frame->end());  // begin == end
}

TEST(ParcelFrame, SingleParcelFrame) {
  const parcel::parcel p = sample_parcel();
  std::vector<std::byte> buf;
  frame_begin(buf);
  frame_append(buf, p);
  EXPECT_EQ(frame_count(buf), 1u);

  const auto frame = frame_view::parse(buf);
  ASSERT_TRUE(frame.has_value());
  ASSERT_EQ(frame->count(), 1u);
  expect_equal((*frame->begin()).to_parcel(), p);
}

TEST(ParcelFrame, BatchRoundTripPreservesOrderAndContents) {
  std::vector<parcel::parcel> parcels;
  std::vector<std::byte> buf;
  frame_begin(buf);
  for (int i = 0; i < 17; ++i) {
    parcels.push_back(sample_parcel(i));
    if (i % 5 == 0) parcels.back().arguments.clear();  // empty-args parcels
    frame_append(buf, parcels.back());
  }
  EXPECT_EQ(frame_count(buf), 17u);

  const auto frame = frame_view::parse(buf);
  ASSERT_TRUE(frame.has_value());
  ASSERT_EQ(frame->count(), 17u);
  std::size_t i = 0;
  for (auto it = frame->begin(); it != frame->end(); ++it, ++i) {
    expect_equal((*it).to_parcel(), parcels[i]);
  }
  EXPECT_EQ(i, parcels.size());
}

TEST(ParcelFrame, TruncatedFramesRejected) {
  std::vector<std::byte> buf;
  frame_begin(buf);
  for (int i = 0; i < 3; ++i) frame_append(buf, sample_parcel(i));
  ASSERT_TRUE(frame_view::parse(buf).has_value());
  for (std::size_t n = 0; n < buf.size(); ++n) {
    EXPECT_FALSE(frame_view::parse(std::span(buf.data(), n)).has_value())
        << "prefix of " << n << " bytes parsed";
  }
}

TEST(ParcelFrame, GarbageRejected) {
  // Wrong magic.
  std::vector<std::byte> buf;
  frame_begin(buf);
  frame_append(buf, sample_parcel());
  buf[0] = std::byte{0x00};
  EXPECT_FALSE(frame_view::parse(buf).has_value());

  // Random bytes.
  std::vector<std::byte> junk(64);
  for (std::size_t i = 0; i < junk.size(); ++i) {
    junk[i] = static_cast<std::byte>(i * 37 + 11);
  }
  EXPECT_FALSE(frame_view::parse(junk).has_value());

  // Empty input.
  EXPECT_FALSE(frame_view::parse({}).has_value());
}

TEST(ParcelFrame, CorruptCountAndLengthRejected) {
  std::vector<std::byte> buf;
  frame_begin(buf);
  frame_append(buf, sample_parcel());

  // Count claims more records than the frame carries.
  auto inflated = buf;
  const std::uint32_t big = 1000;
  std::memcpy(inflated.data() + 4, &big, sizeof big);
  EXPECT_FALSE(frame_view::parse(inflated).has_value());

  // Count claims fewer: the tail becomes trailing garbage.
  auto deflated = buf;
  const std::uint32_t zero = 0;
  std::memcpy(deflated.data() + 4, &zero, sizeof zero);
  EXPECT_FALSE(frame_view::parse(deflated).has_value());

  // Record length larger than the remaining bytes.
  auto overlong = buf;
  const std::uint32_t huge = 0x7fffffff;
  std::memcpy(overlong.data() + frame_header_bytes, &huge, sizeof huge);
  EXPECT_FALSE(frame_view::parse(overlong).has_value());

  // Record length that truncates the parcel header.
  auto shortrec = buf;
  const std::uint32_t tiny = 4;
  std::memcpy(shortrec.data() + frame_header_bytes, &tiny, sizeof tiny);
  EXPECT_FALSE(frame_view::parse(shortrec).has_value());
}

// ------------------------------------------------------- wire byte order

// The wire format is defined little-endian (distributed peers must agree
// on what the bytes mean).  Pin the exact on-wire layout of every header
// field: if this golden test breaks, the wire format changed and every
// peer must change with it.
TEST(ParcelWire, HeaderEncodesLittleEndian) {
  parcel::parcel p;
  p.destination = gas::gid::from_bits(0x1122334455667788ull);
  p.cont.target = gas::gid::from_bits(0x99aabbccddeeff00ull);
  p.action = 0x01020304u;
  p.cont.action = 0x05060708u;
  p.source = 0x0a0b0c0du;
  p.forwards = 0x7f;
  p.arguments = {std::byte{0xde}, std::byte{0xad}};

  std::vector<std::byte> buf;
  encode_into(buf, p);
  ASSERT_EQ(buf.size(), wire_header_bytes + 2);
  const auto at = [&](std::size_t i) {
    return std::to_integer<unsigned>(buf[i]);
  };
  // destination, least significant byte first
  EXPECT_EQ(at(0), 0x88u);
  EXPECT_EQ(at(7), 0x11u);
  // continuation target
  EXPECT_EQ(at(8), 0x00u);
  EXPECT_EQ(at(15), 0x99u);
  // action / cont.action / source
  EXPECT_EQ(at(16), 0x04u);
  EXPECT_EQ(at(19), 0x01u);
  EXPECT_EQ(at(20), 0x08u);
  EXPECT_EQ(at(23), 0x05u);
  EXPECT_EQ(at(24), 0x0du);
  EXPECT_EQ(at(27), 0x0au);
  // forwards + reserved zero padding
  EXPECT_EQ(at(28), 0x7fu);
  EXPECT_EQ(at(29), 0x00u);
  EXPECT_EQ(at(30), 0x00u);
  EXPECT_EQ(at(31), 0x00u);
  // arg length then raw argument bytes
  EXPECT_EQ(at(32), 0x02u);
  EXPECT_EQ(at(35), 0x00u);
  EXPECT_EQ(at(36), 0xdeu);
  EXPECT_EQ(at(37), 0xadu);
}

TEST(ParcelWire, FrameHeaderEncodesLittleEndian) {
  std::vector<std::byte> buf;
  frame_begin(buf);
  frame_append(buf, sample_parcel());
  // magic "PXBF" reads as the bytes P X B F in stream order...
  EXPECT_EQ(std::to_integer<char>(buf[0]), 'P');
  EXPECT_EQ(std::to_integer<char>(buf[1]), 'X');
  EXPECT_EQ(std::to_integer<char>(buf[2]), 'B');
  EXPECT_EQ(std::to_integer<char>(buf[3]), 'F');
  // ...and count is a little-endian u32.
  EXPECT_EQ(std::to_integer<unsigned>(buf[4]), 1u);
  EXPECT_EQ(std::to_integer<unsigned>(buf[7]), 0u);
}

TEST(ParcelWire, GoldenBytesDecodeOnThisHost) {
  // A frame captured from the (little-endian-defined) wire: one record,
  // action 0x0102, no continuation, source 3, one argument byte 0x2a,
  // destination gid 0x4000000000000007 (data kind, home 0, seq 7).
  const unsigned char wire[] = {
      'P', 'X', 'B', 'F', 1, 0, 0, 0,  // frame header
      37, 0, 0, 0,                     // record length
      0x07, 0, 0, 0, 0, 0, 0, 0x40,    // destination
      0, 0, 0, 0, 0, 0, 0, 0,          // cont target (invalid)
      0x02, 0x01, 0, 0,                // action
      0, 0, 0, 0,                      // cont action
      3, 0, 0, 0,                      // source
      0, 0, 0, 0,                      // forwards + reserved
      1, 0, 0, 0,                      // arg length
      0x2a,                            // argument
  };
  std::vector<std::byte> buf(sizeof wire);
  std::memcpy(buf.data(), wire, sizeof wire);
  const auto frame = frame_view::parse(buf);
  ASSERT_TRUE(frame.has_value());
  ASSERT_EQ(frame->count(), 1u);
  const parcel_view v = *frame->begin();
  EXPECT_EQ(v.destination().bits(), 0x4000000000000007ull);
  EXPECT_EQ(v.action(), 0x0102u);
  EXPECT_FALSE(v.cont().valid());
  EXPECT_EQ(v.source(), 3u);
  ASSERT_EQ(v.arguments().size(), 1u);
  EXPECT_EQ(std::to_integer<unsigned>(v.arguments()[0]), 0x2au);
}

// ------------------------------------------------------ stream reassembly

TEST(FrameAssembler, WholeFrameInOneFeed) {
  std::vector<std::byte> buf;
  frame_begin(buf);
  frame_append(buf, sample_parcel(1));
  frame_assembler as;
  ASSERT_TRUE(as.feed(buf));
  const auto frame = as.next_frame();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(*frame, buf);
  EXPECT_FALSE(as.next_frame().has_value());
  EXPECT_EQ(as.buffered_bytes(), 0u);
}

// The satellite case: a multi-parcel frame split at *every* byte boundary
// must reassemble identically — no header/record/argument boundary is
// special to the stream.
TEST(FrameAssembler, PartialReadsSplitAtEveryByteBoundary) {
  std::vector<std::byte> buf;
  frame_begin(buf);
  for (int i = 0; i < 3; ++i) frame_append(buf, sample_parcel(i));
  for (std::size_t split = 1; split < buf.size(); ++split) {
    frame_assembler as;
    ASSERT_TRUE(as.feed(std::span(buf.data(), split)));
    EXPECT_FALSE(as.next_frame().has_value())
        << "frame yielded before its last byte (split " << split << ")";
    ASSERT_TRUE(as.feed(std::span(buf.data() + split, buf.size() - split)));
    const auto frame = as.next_frame();
    ASSERT_TRUE(frame.has_value()) << "split at byte " << split;
    EXPECT_EQ(*frame, buf);
    EXPECT_EQ(as.buffered_bytes(), 0u);
  }
}

TEST(FrameAssembler, DribbleOneByteAtATime) {
  std::vector<std::byte> buf;
  frame_begin(buf);
  for (int i = 0; i < 2; ++i) frame_append(buf, sample_parcel(10 + i));
  frame_assembler as;
  for (std::size_t i = 0; i + 1 < buf.size(); ++i) {
    ASSERT_TRUE(as.feed(std::span(buf.data() + i, 1)));
    EXPECT_FALSE(as.next_frame().has_value());
  }
  ASSERT_TRUE(as.feed(std::span(buf.data() + buf.size() - 1, 1)));
  const auto frame = as.next_frame();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(*frame, buf);
}

TEST(FrameAssembler, BackToBackFramesInOneFeed) {
  std::vector<std::byte> f1, f2, stream;
  frame_begin(f1);
  frame_append(f1, sample_parcel(1));
  frame_begin(f2);
  frame_append(f2, sample_parcel(2));
  frame_append(f2, sample_parcel(3));
  stream = f1;
  stream.insert(stream.end(), f2.begin(), f2.end());
  // Plus a partial third frame left dangling.
  stream.insert(stream.end(), f1.begin(), f1.begin() + 5);

  frame_assembler as;
  ASSERT_TRUE(as.feed(stream));
  auto a = as.next_frame();
  auto b = as.next_frame();
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(*a, f1);
  EXPECT_EQ(*b, f2);
  EXPECT_FALSE(as.next_frame().has_value());
  EXPECT_EQ(as.buffered_bytes(), 5u);
}

// Garbage prefix: rejected outright, never resynchronized — scanning for
// the next magic would silently drop parcels.
TEST(FrameAssembler, GarbagePrefixPoisonsInsteadOfResyncing) {
  std::vector<std::byte> valid;
  frame_begin(valid);
  frame_append(valid, sample_parcel());
  std::vector<std::byte> stream = {std::byte{0x00}, std::byte{0x01},
                                   std::byte{0x02}, std::byte{0x03},
                                   std::byte{0xff}, std::byte{0xff},
                                   std::byte{0xff}, std::byte{0xff}};
  stream.insert(stream.end(), valid.begin(), valid.end());

  frame_assembler as;
  EXPECT_FALSE(as.feed(stream));
  EXPECT_TRUE(as.poisoned());
  EXPECT_FALSE(as.next_frame().has_value());
  // Still poisoned: later clean bytes must not revive the stream.
  EXPECT_FALSE(as.feed(valid));
  EXPECT_FALSE(as.next_frame().has_value());
}

TEST(FrameAssembler, OversizedFrameClaimPoisons) {
  std::vector<std::byte> buf;
  frame_begin(buf);
  frame_append(buf, sample_parcel());
  // Corrupt the record length to something enormous.
  const std::uint32_t huge = 0x7fffffffu;
  std::memcpy(buf.data() + frame_header_bytes, &huge, sizeof huge);
  frame_assembler as(1 << 16);
  EXPECT_FALSE(as.feed(buf));
  EXPECT_TRUE(as.poisoned());
}

TEST(FrameAssembler, CorruptRecordInsideCompleteFramePoisons) {
  std::vector<std::byte> buf;
  frame_begin(buf);
  frame_append(buf, sample_parcel());
  // Flip the parcel's arg-length field so the record is internally
  // inconsistent while the frame stays structurally delimitable.
  buf[frame_header_bytes + 4 + 32] ^= std::byte{0x01};
  frame_assembler as;
  as.feed(buf);
  EXPECT_FALSE(as.next_frame().has_value());
  EXPECT_TRUE(as.poisoned());
}

TEST(Parcel, ContinuationValidity) {
  continuation c;
  EXPECT_FALSE(c.valid());
  c.target = gas::gid::make(gas::gid_kind::lco, 0, 1);
  EXPECT_TRUE(c.valid());
}

// -------------------------------------------------------- action registry

TEST(ActionRegistry, RegisterDispatchByIdAndName) {
  action_registry reg;
  int hits = 0;
  void* seen_ctx = nullptr;
  const action_id id = reg.register_action(
      "test.hello", [&](void* ctx, parcel::parcel) {
        ++hits;
        seen_ctx = ctx;
      });
  EXPECT_EQ(reg.find("test.hello").value(), id);
  EXPECT_EQ(reg.name_of(id), "test.hello");
  EXPECT_FALSE(reg.find("test.absent").has_value());

  parcel::parcel p;
  p.action = id;
  int ctx_obj = 0;
  reg.dispatch(&ctx_obj, std::move(p));
  EXPECT_EQ(hits, 1);
  EXPECT_EQ(seen_ctx, &ctx_obj);
}

int g_fast_hits = 0;
void fast_handler(void*, const parcel_view& pv) {
  g_fast_hits += static_cast<int>(pv.arguments().size());
}

TEST(ActionRegistry, FunctionPointerFastPathDispatchesViews) {
  action_registry reg;
  const action_id id = reg.register_action("test.fast", &fast_handler);

  // Dispatch from an owned parcel: the view borrows its arguments.
  g_fast_hits = 0;
  parcel::parcel p;
  p.action = id;
  p.arguments = std::vector<std::byte>(5);
  reg.dispatch(nullptr, std::move(p));
  EXPECT_EQ(g_fast_hits, 5);

  // Dispatch from a wire view: zero-copy end to end.
  parcel::parcel q;
  q.action = id;
  q.arguments = std::vector<std::byte>(9);
  std::vector<std::byte> buf;
  encode_into(buf, q);
  const auto v = parcel_view::parse(buf);
  ASSERT_TRUE(v.has_value());
  g_fast_hits = 0;
  reg.dispatch(nullptr, *v);
  EXPECT_EQ(g_fast_hits, 9);
}

TEST(ActionRegistry, ClosureHandlerReceivesMaterializedParcelFromView) {
  action_registry reg;
  parcel::parcel seen;
  const action_id id = reg.register_action(
      "test.closure", [&](void*, parcel::parcel p) { seen = std::move(p); });

  const parcel::parcel p = sample_parcel();
  std::vector<std::byte> buf;
  encode_into(buf, p);
  auto v = parcel_view::parse(buf);
  ASSERT_TRUE(v.has_value());
  // Overwrite the action id in the encoded view's parcel copy path.
  parcel::parcel owned = v->to_parcel();
  owned.action = id;
  std::vector<std::byte> buf2;
  encode_into(buf2, owned);
  v = parcel_view::parse(buf2);
  ASSERT_TRUE(v.has_value());
  reg.dispatch(nullptr, *v);
  expect_equal(seen, owned);
}

TEST(ActionRegistry, IdsAreSequentialFromOne) {
  action_registry reg;
  const auto a = reg.register_action("a", [](void*, parcel::parcel) {});
  const auto b = reg.register_action("b", [](void*, parcel::parcel) {});
  EXPECT_EQ(a, 1u);
  EXPECT_EQ(b, 2u);
  EXPECT_EQ(reg.size(), 2u);
}

TEST(ActionRegistry, GlobalIsSingleton) {
  EXPECT_EQ(&action_registry::global(), &action_registry::global());
}

// Migration payload records (PR 5): the registry reconstructs a
// registered type from record bytes, and the record itself round-trips
// through the serialization archive like any action argument.
struct mig_probe {
  std::uint64_t a = 0;
  std::string tag;
  template <typename Ar>
  friend void serialize(Ar& ar, mig_probe& m) {
    ar& m.a& m.tag;
  }
};
PX_REGISTER_MIGRATABLE(mig_probe)

TEST(Migration, RegistryEncodesAndReconstructsRegisteredTypes) {
  auto& reg = migratable_registry::global();
  const auto* vt = reg.find("mig_probe");
  ASSERT_NE(vt, nullptr);
  auto obj = std::make_shared<mig_probe>();
  obj->a = 42;
  obj->tag = "hot";
  const auto bytes = vt->encode(std::static_pointer_cast<void>(obj));
  const auto back = vt->decode(bytes);
  ASSERT_NE(back, nullptr);
  const auto* m = static_cast<const mig_probe*>(back.get());
  EXPECT_EQ(m->a, 42u);
  EXPECT_EQ(m->tag, "hot");
  EXPECT_EQ(reg.find("no_such_type"), nullptr);
}

TEST(Migration, RecordRoundTripsThroughArchive) {
  migration_record rec;
  rec.gid_bits = 0x1234abcdull;
  rec.type_name = "mig_probe";
  rec.payload = px::util::to_bytes(std::uint64_t{7});
  const auto bytes = px::util::to_bytes(rec);
  const auto back = px::util::from_bytes<migration_record>(bytes);
  EXPECT_EQ(back.gid_bits, rec.gid_bits);
  EXPECT_EQ(back.type_name, rec.type_name);
  EXPECT_EQ(back.payload, rec.payload);
}

}  // namespace
