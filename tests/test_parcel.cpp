// Unit tests: parcel wire format (records, batch frames, zero-copy views)
// and the action registry.
#include <gtest/gtest.h>

#include <cstring>

#include "parcel/action_registry.hpp"
#include "parcel/parcel.hpp"

namespace {

using namespace px;
using namespace px::parcel;

parcel::parcel sample_parcel(int salt = 0) {
  parcel::parcel p;
  p.destination = gas::gid::make(gas::gid_kind::data, 3, 42 + salt);
  p.action = 7 + static_cast<action_id>(salt);
  p.cont.target = gas::gid::make(gas::gid_kind::lco, 1, 9);
  p.cont.action = 2;
  p.arguments = util::to_bytes(std::string("payload"), 123 + salt);
  p.source = 5;
  p.forwards = 2;
  return p;
}

void expect_equal(const parcel::parcel& a, const parcel::parcel& b) {
  EXPECT_EQ(a.destination, b.destination);
  EXPECT_EQ(a.action, b.action);
  EXPECT_EQ(a.cont.target, b.cont.target);
  EXPECT_EQ(a.cont.action, b.cont.action);
  EXPECT_EQ(a.arguments, b.arguments);
  EXPECT_EQ(a.source, b.source);
  EXPECT_EQ(a.forwards, b.forwards);
}

// ------------------------------------------------------------ record wire

TEST(Parcel, RecordRoundTripIdentity) {
  const parcel::parcel p = sample_parcel();
  std::vector<std::byte> buf;
  encode_into(buf, p);
  EXPECT_EQ(buf.size(), encoded_size(p));

  const auto v = parcel_view::parse(buf);
  ASSERT_TRUE(v.has_value());
  expect_equal(v->to_parcel(), p);
}

TEST(Parcel, ViewReadsArgumentsInPlace) {
  const parcel::parcel p = sample_parcel();
  std::vector<std::byte> buf;
  encode_into(buf, p);
  const auto v = parcel_view::parse(buf);
  ASSERT_TRUE(v.has_value());
  // Zero-copy: the argument span must alias the encode buffer.
  EXPECT_GE(v->arguments().data(), buf.data());
  EXPECT_LE(v->arguments().data() + v->arguments().size(),
            buf.data() + buf.size());
  EXPECT_EQ(v->arguments().size(), p.arguments.size());
  EXPECT_EQ(std::memcmp(v->arguments().data(), p.arguments.data(),
                        p.arguments.size()),
            0);
}

TEST(Parcel, ViewOfBorrowsWithoutCopy) {
  const parcel::parcel p = sample_parcel();
  const parcel_view v = parcel_view::of(p);
  EXPECT_EQ(v.destination(), p.destination);
  EXPECT_EQ(v.arguments().data(), p.arguments.data());  // same storage
}

TEST(Parcel, TruncatedRecordRejected) {
  std::vector<std::byte> buf;
  encode_into(buf, sample_parcel());
  // Every strict prefix must be rejected: either the header is short or
  // the argument length no longer matches the record size.
  for (std::size_t n = 0; n < buf.size(); ++n) {
    EXPECT_FALSE(parcel_view::parse(std::span(buf.data(), n)).has_value())
        << "prefix of " << n << " bytes parsed";
  }
}

TEST(Parcel, RecordWithOversizedTailRejected) {
  std::vector<std::byte> buf;
  encode_into(buf, sample_parcel());
  buf.push_back(std::byte{0});  // arg_len no longer matches
  EXPECT_FALSE(parcel_view::parse(buf).has_value());
}

TEST(Parcel, EncodeIntoAppends) {
  std::vector<std::byte> buf;
  const parcel::parcel a = sample_parcel(1);
  const parcel::parcel b = sample_parcel(2);
  encode_into(buf, a);
  const std::size_t split = buf.size();
  encode_into(buf, b);
  const auto va = parcel_view::parse(std::span(buf.data(), split));
  const auto vb =
      parcel_view::parse(std::span(buf.data() + split, buf.size() - split));
  ASSERT_TRUE(va.has_value());
  ASSERT_TRUE(vb.has_value());
  expect_equal(va->to_parcel(), a);
  expect_equal(vb->to_parcel(), b);
}

// ------------------------------------------------------------ batch frame

TEST(ParcelFrame, EmptyFrameRoundTrip) {
  std::vector<std::byte> buf;
  frame_begin(buf);
  EXPECT_EQ(buf.size(), frame_header_bytes);
  EXPECT_EQ(frame_count(buf), 0u);
  const auto frame = frame_view::parse(buf);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->count(), 0u);
  EXPECT_FALSE(frame->begin() != frame->end());  // begin == end
}

TEST(ParcelFrame, SingleParcelFrame) {
  const parcel::parcel p = sample_parcel();
  std::vector<std::byte> buf;
  frame_begin(buf);
  frame_append(buf, p);
  EXPECT_EQ(frame_count(buf), 1u);

  const auto frame = frame_view::parse(buf);
  ASSERT_TRUE(frame.has_value());
  ASSERT_EQ(frame->count(), 1u);
  expect_equal((*frame->begin()).to_parcel(), p);
}

TEST(ParcelFrame, BatchRoundTripPreservesOrderAndContents) {
  std::vector<parcel::parcel> parcels;
  std::vector<std::byte> buf;
  frame_begin(buf);
  for (int i = 0; i < 17; ++i) {
    parcels.push_back(sample_parcel(i));
    if (i % 5 == 0) parcels.back().arguments.clear();  // empty-args parcels
    frame_append(buf, parcels.back());
  }
  EXPECT_EQ(frame_count(buf), 17u);

  const auto frame = frame_view::parse(buf);
  ASSERT_TRUE(frame.has_value());
  ASSERT_EQ(frame->count(), 17u);
  std::size_t i = 0;
  for (auto it = frame->begin(); it != frame->end(); ++it, ++i) {
    expect_equal((*it).to_parcel(), parcels[i]);
  }
  EXPECT_EQ(i, parcels.size());
}

TEST(ParcelFrame, TruncatedFramesRejected) {
  std::vector<std::byte> buf;
  frame_begin(buf);
  for (int i = 0; i < 3; ++i) frame_append(buf, sample_parcel(i));
  ASSERT_TRUE(frame_view::parse(buf).has_value());
  for (std::size_t n = 0; n < buf.size(); ++n) {
    EXPECT_FALSE(frame_view::parse(std::span(buf.data(), n)).has_value())
        << "prefix of " << n << " bytes parsed";
  }
}

TEST(ParcelFrame, GarbageRejected) {
  // Wrong magic.
  std::vector<std::byte> buf;
  frame_begin(buf);
  frame_append(buf, sample_parcel());
  buf[0] = std::byte{0x00};
  EXPECT_FALSE(frame_view::parse(buf).has_value());

  // Random bytes.
  std::vector<std::byte> junk(64);
  for (std::size_t i = 0; i < junk.size(); ++i) {
    junk[i] = static_cast<std::byte>(i * 37 + 11);
  }
  EXPECT_FALSE(frame_view::parse(junk).has_value());

  // Empty input.
  EXPECT_FALSE(frame_view::parse({}).has_value());
}

TEST(ParcelFrame, CorruptCountAndLengthRejected) {
  std::vector<std::byte> buf;
  frame_begin(buf);
  frame_append(buf, sample_parcel());

  // Count claims more records than the frame carries.
  auto inflated = buf;
  const std::uint32_t big = 1000;
  std::memcpy(inflated.data() + 4, &big, sizeof big);
  EXPECT_FALSE(frame_view::parse(inflated).has_value());

  // Count claims fewer: the tail becomes trailing garbage.
  auto deflated = buf;
  const std::uint32_t zero = 0;
  std::memcpy(deflated.data() + 4, &zero, sizeof zero);
  EXPECT_FALSE(frame_view::parse(deflated).has_value());

  // Record length larger than the remaining bytes.
  auto overlong = buf;
  const std::uint32_t huge = 0x7fffffff;
  std::memcpy(overlong.data() + frame_header_bytes, &huge, sizeof huge);
  EXPECT_FALSE(frame_view::parse(overlong).has_value());

  // Record length that truncates the parcel header.
  auto shortrec = buf;
  const std::uint32_t tiny = 4;
  std::memcpy(shortrec.data() + frame_header_bytes, &tiny, sizeof tiny);
  EXPECT_FALSE(frame_view::parse(shortrec).has_value());
}

TEST(Parcel, ContinuationValidity) {
  continuation c;
  EXPECT_FALSE(c.valid());
  c.target = gas::gid::make(gas::gid_kind::lco, 0, 1);
  EXPECT_TRUE(c.valid());
}

// -------------------------------------------------------- action registry

TEST(ActionRegistry, RegisterDispatchByIdAndName) {
  action_registry reg;
  int hits = 0;
  void* seen_ctx = nullptr;
  const action_id id = reg.register_action(
      "test.hello", [&](void* ctx, parcel::parcel) {
        ++hits;
        seen_ctx = ctx;
      });
  EXPECT_EQ(reg.find("test.hello").value(), id);
  EXPECT_EQ(reg.name_of(id), "test.hello");
  EXPECT_FALSE(reg.find("test.absent").has_value());

  parcel::parcel p;
  p.action = id;
  int ctx_obj = 0;
  reg.dispatch(&ctx_obj, std::move(p));
  EXPECT_EQ(hits, 1);
  EXPECT_EQ(seen_ctx, &ctx_obj);
}

int g_fast_hits = 0;
void fast_handler(void*, const parcel_view& pv) {
  g_fast_hits += static_cast<int>(pv.arguments().size());
}

TEST(ActionRegistry, FunctionPointerFastPathDispatchesViews) {
  action_registry reg;
  const action_id id = reg.register_action("test.fast", &fast_handler);

  // Dispatch from an owned parcel: the view borrows its arguments.
  g_fast_hits = 0;
  parcel::parcel p;
  p.action = id;
  p.arguments = std::vector<std::byte>(5);
  reg.dispatch(nullptr, std::move(p));
  EXPECT_EQ(g_fast_hits, 5);

  // Dispatch from a wire view: zero-copy end to end.
  parcel::parcel q;
  q.action = id;
  q.arguments = std::vector<std::byte>(9);
  std::vector<std::byte> buf;
  encode_into(buf, q);
  const auto v = parcel_view::parse(buf);
  ASSERT_TRUE(v.has_value());
  g_fast_hits = 0;
  reg.dispatch(nullptr, *v);
  EXPECT_EQ(g_fast_hits, 9);
}

TEST(ActionRegistry, ClosureHandlerReceivesMaterializedParcelFromView) {
  action_registry reg;
  parcel::parcel seen;
  const action_id id = reg.register_action(
      "test.closure", [&](void*, parcel::parcel p) { seen = std::move(p); });

  const parcel::parcel p = sample_parcel();
  std::vector<std::byte> buf;
  encode_into(buf, p);
  auto v = parcel_view::parse(buf);
  ASSERT_TRUE(v.has_value());
  // Overwrite the action id in the encoded view's parcel copy path.
  parcel::parcel owned = v->to_parcel();
  owned.action = id;
  std::vector<std::byte> buf2;
  encode_into(buf2, owned);
  v = parcel_view::parse(buf2);
  ASSERT_TRUE(v.has_value());
  reg.dispatch(nullptr, *v);
  expect_equal(seen, owned);
}

TEST(ActionRegistry, IdsAreSequentialFromOne) {
  action_registry reg;
  const auto a = reg.register_action("a", [](void*, parcel::parcel) {});
  const auto b = reg.register_action("b", [](void*, parcel::parcel) {});
  EXPECT_EQ(a, 1u);
  EXPECT_EQ(b, 2u);
  EXPECT_EQ(reg.size(), 2u);
}

TEST(ActionRegistry, GlobalIsSingleton) {
  EXPECT_EQ(&action_registry::global(), &action_registry::global());
}

}  // namespace
