// Unit tests: context switching, stacks, and the work-stealing scheduler.
#include <gtest/gtest.h>

#include <atomic>
#include <cfenv>
#include <set>
#include <vector>

#include "threads/context.hpp"
#include "threads/scheduler.hpp"
#include "threads/stack.hpp"

namespace {

using namespace px::threads;

// ---------------------------------------------------------------- context

struct ping_pong_state {
  context main_ctx;
  context fiber_ctx;
  std::vector<int> trace;
};
void ping_pong_entry(void* arg) {
  auto* st = static_cast<ping_pong_state*>(arg);
  st->trace.push_back(1);
  context::swap(st->fiber_ctx, st->main_ctx, nullptr);
  st->trace.push_back(3);
  context::swap(st->fiber_ctx, st->main_ctx, nullptr);
  // never reached
  st->trace.push_back(99);
}

TEST(Context, PingPongPreservesControlFlow) {
  std::vector<char> stack_mem(64 * 1024);
  ping_pong_state st;
  st.fiber_ctx =
      context::make(stack_mem.data() + stack_mem.size(), &ping_pong_entry);

  st.trace.push_back(0);
  context::swap(st.main_ctx, st.fiber_ctx, &st);
  st.trace.push_back(2);
  context::swap(st.main_ctx, st.fiber_ctx, nullptr);
  st.trace.push_back(4);

  EXPECT_EQ(st.trace, (std::vector<int>{0, 1, 2, 3, 4}));
}

void payload_entry(void* arg) {
  auto* st = static_cast<ping_pong_state*>(arg);
  void* got = context::swap(st->fiber_ctx, st->main_ctx, st);
  // Payload passed on resume arrives as swap's return value.
  st->trace.push_back(*static_cast<int*>(got));
  context::swap(st->fiber_ctx, st->main_ctx, nullptr);
}

TEST(Context, PayloadRoundTrip) {
  std::vector<char> stack_mem(64 * 1024);
  ping_pong_state st;
  st.fiber_ctx =
      context::make(stack_mem.data() + stack_mem.size(), &payload_entry);
  void* first = context::swap(st.main_ctx, st.fiber_ctx, &st);
  EXPECT_EQ(first, &st);
  int value = 42;
  context::swap(st.main_ctx, st.fiber_ctx, &value);
  EXPECT_EQ(st.trace, std::vector<int>{42});
}

// px_ctx_swap must save/restore mxcsr and the x87 control word: a fiber's
// FP environment is part of its context.  std::fesetround writes both
// control registers on x86-64, so round-tripping the rounding mode across
// swaps exercises exactly the stmxcsr/ldmxcsr + fnstcw/fldcw pairs.
struct fp_state {
  context main_ctx;
  context fiber_ctx;
  bool fiber_kept_downward = false;
};

void fp_entry(void* arg) {
  auto* st = static_cast<fp_state*>(arg);
  std::fesetround(FE_DOWNWARD);
  context::swap(st->fiber_ctx, st->main_ctx, nullptr);
  // Back in the fiber: its FE_DOWNWARD must have been restored even though
  // the main context ran (and checked) FE_TONEAREST in between.
  st->fiber_kept_downward = std::fegetround() == FE_DOWNWARD;
  std::fesetround(FE_TONEAREST);
  context::swap(st->fiber_ctx, st->main_ctx, nullptr);
}

TEST(Context, RoundTripsFpControlState) {
  ASSERT_EQ(std::fegetround(), FE_TONEAREST);
  std::vector<char> stack_mem(64 * 1024);
  fp_state st;
  st.fiber_ctx =
      context::make(stack_mem.data() + stack_mem.size(), &fp_entry);
  context::swap(st.main_ctx, st.fiber_ctx, &st);
  // The fiber switched itself to FE_DOWNWARD; our environment is intact.
  EXPECT_EQ(std::fegetround(), FE_TONEAREST);
  context::swap(st.main_ctx, st.fiber_ctx, nullptr);
  EXPECT_TRUE(st.fiber_kept_downward);
  EXPECT_EQ(std::fegetround(), FE_TONEAREST);
}

// ------------------------------------------------------------------ stack

TEST(StackPool, RecyclesStacks) {
  stack_pool pool(16 * 1024);
  stack a = pool.allocate();
  ASSERT_TRUE(a.valid());
  EXPECT_EQ(pool.outstanding(), 1u);
  void* top = a.top;
  pool.deallocate(a);
  EXPECT_EQ(pool.outstanding(), 0u);
  EXPECT_EQ(pool.pooled(), 1u);
  stack b = pool.allocate();
  EXPECT_EQ(b.top, top);  // same stack came back
  pool.deallocate(b);
}

TEST(StackPool, RoundsUpToPages) {
  stack_pool pool(1);
  EXPECT_GE(pool.usable_bytes(), 4096u);
}

TEST(StackPool, BoundsPooledStacks) {
  constexpr std::size_t kCap = 4;
  stack_pool pool(16 * 1024, kCap);
  std::vector<stack> stacks;
  for (int i = 0; i < 16; ++i) stacks.push_back(pool.allocate());
  EXPECT_EQ(pool.outstanding(), 16u);
  for (auto& s : stacks) pool.deallocate(s);
  EXPECT_EQ(pool.outstanding(), 0u);
  // Only the cap survives in the free list; the overflow was unmapped.
  EXPECT_EQ(pool.pooled(), kCap);
  // The cap holds across further churn.
  stack again = pool.allocate();
  pool.deallocate(again);
  EXPECT_LE(pool.pooled(), kCap);
}

TEST(StackPool, StacksAreWritable) {
  stack_pool pool(16 * 1024);
  stack s = pool.allocate();
  auto* bytes = static_cast<char*>(s.top);
  // Touch the full usable area below top.
  for (std::size_t i = 1; i <= pool.usable_bytes(); ++i) bytes[-static_cast<std::ptrdiff_t>(i)] = 'x';
  pool.deallocate(s);
}

// -------------------------------------------------------------- scheduler

TEST(Scheduler, RunsASingleThread) {
  scheduler sched(scheduler_params{.workers = 2});
  sched.start();
  std::atomic<int> hits{0};
  sched.spawn([&] { hits.fetch_add(1); });
  sched.wait_quiescent();
  EXPECT_EQ(hits.load(), 1);
  sched.stop();
}

TEST(Scheduler, RunsManyThreadsFromExternalSpawner) {
  scheduler sched(scheduler_params{.workers = 4});
  sched.start();
  constexpr int kThreads = 10000;
  std::atomic<int> hits{0};
  for (int i = 0; i < kThreads; ++i) {
    sched.spawn([&] { hits.fetch_add(1, std::memory_order_relaxed); });
  }
  sched.wait_quiescent();
  EXPECT_EQ(hits.load(), kThreads);
  EXPECT_EQ(sched.stats().completed, static_cast<std::uint64_t>(kThreads));
  sched.stop();
}

TEST(Scheduler, NestedSpawnFanOut) {
  scheduler sched(scheduler_params{.workers = 4});
  sched.start();
  std::atomic<int> hits{0};
  // Binary fan-out tree of depth 10 => 2^10 leaves.
  std::function<void(int)> node = [&](int depth) {
    if (depth == 0) {
      hits.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    sched.spawn([&, depth] { node(depth - 1); });
    sched.spawn([&, depth] { node(depth - 1); });
  };
  sched.spawn([&] { node(10); });
  sched.wait_quiescent();
  EXPECT_EQ(hits.load(), 1024);
  sched.stop();
}

TEST(Scheduler, YieldInterleavesThreads) {
  scheduler sched(scheduler_params{.workers = 1});
  sched.start();
  std::atomic<int> running{0};
  std::atomic<int> max_seen{0};
  std::atomic<bool> go{false};
  for (int i = 0; i < 4; ++i) {
    sched.spawn([&] {
      // Gate: yield until every sibling is spawned so the single worker
      // cannot run one thread to completion before the others exist.
      while (!go.load()) scheduler::yield();
      running.fetch_add(1);
      for (int k = 0; k < 50; ++k) {
        int cur = running.load();
        int prev = max_seen.load();
        while (prev < cur && !max_seen.compare_exchange_weak(prev, cur)) {
        }
        scheduler::yield();
      }
      running.fetch_sub(1);
    });
  }
  go.store(true);
  sched.wait_quiescent();
  // With one worker and cooperative yields, all 4 threads were live at once.
  EXPECT_EQ(max_seen.load(), 4);
  sched.stop();
}

TEST(Scheduler, SuspendResumeFromAnotherOsThread) {
  scheduler sched(scheduler_params{.workers = 2});
  sched.start();
  std::atomic<thread_descriptor*> parked{nullptr};
  std::atomic<bool> resumed_flag{false};

  sched.spawn([&] {
    scheduler::suspend(
        [](thread_descriptor* td, void* arg) {
          static_cast<std::atomic<thread_descriptor*>*>(arg)->store(td);
        },
        &parked);
    // Only reached after the external resume below.
    resumed_flag.store(true);
  });

  // Busy-wait for the suspend hook to publish the descriptor.
  while (parked.load() == nullptr) {
  }
  EXPECT_FALSE(resumed_flag.load());
  sched.resume(parked.load());
  sched.wait_quiescent();
  EXPECT_TRUE(resumed_flag.load());
  sched.stop();
}

TEST(Scheduler, SuspendHookMayResumeImmediately) {
  scheduler sched(scheduler_params{.workers = 2});
  sched.start();
  std::atomic<int> step{0};
  sched.spawn([&] {
    step.store(1);
    // Hook decides the wait is already satisfied and resumes in place.
    scheduler::suspend(
        [](thread_descriptor* td, void*) { td->owner->resume(td); }, nullptr);
    step.store(2);
  });
  sched.wait_quiescent();
  EXPECT_EQ(step.load(), 2);
  sched.stop();
}

TEST(Scheduler, StealsAcrossWorkers) {
  scheduler sched(scheduler_params{.workers = 4, .steal_rounds = 128});
  sched.start();
  std::atomic<int> done{0};
  // One producer thread spawns children that busy-spin briefly, forcing
  // distribution across workers.
  sched.spawn([&] {
    for (int i = 0; i < 256; ++i) {
      sched.spawn([&] {
        volatile int x = 0;
        for (int k = 0; k < 2000; ++k) x = x + k;
        done.fetch_add(1, std::memory_order_relaxed);
      });
    }
  });
  sched.wait_quiescent();
  EXPECT_EQ(done.load(), 256);
  sched.stop();
}

TEST(Scheduler, ThreadIdsAreDistinct) {
  scheduler sched(scheduler_params{.workers = 2});
  sched.start();
  std::mutex mu;
  std::set<std::uint64_t> ids;
  for (int i = 0; i < 100; ++i) {
    sched.spawn([&] {
      thread_descriptor* self = scheduler::self();
      ASSERT_NE(self, nullptr);
      std::lock_guard lock(mu);
      ids.insert(self->id);
    });
  }
  sched.wait_quiescent();
  EXPECT_EQ(ids.size(), 100u);
  sched.stop();
}

TEST(Scheduler, SelfIsNullOnPlainOsThread) {
  EXPECT_EQ(scheduler::self(), nullptr);
}

TEST(Scheduler, StatsCountCompletions) {
  scheduler sched(scheduler_params{.workers = 2});
  sched.start();
  for (int i = 0; i < 32; ++i) sched.spawn([] {});
  sched.wait_quiescent();
  auto st = sched.stats();
  EXPECT_EQ(st.spawned, 32u);
  EXPECT_EQ(st.completed, 32u);
  sched.stop();
}

}  // namespace
