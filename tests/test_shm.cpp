// Unit tests for the shared-memory data plane: the whole-frame delivery
// seam (frame_assembler bypass + frame_view::parse poison path), the
// shm_segment RAII lifetime, and two in-process shm_transport instances
// exercising the ring/doorbell protocol end to end.
#include <gtest/gtest.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>

#include "net/shm_transport.hpp"
#include "net/tcp_transport.hpp"
#include "parcel/parcel.hpp"
#include "util/serialize.hpp"
#include "util/shm_segment.hpp"

namespace {

using namespace px;
using namespace std::chrono_literals;

parcel::parcel sample_parcel(int salt = 0) {
  parcel::parcel p;
  p.destination = gas::gid::make(gas::gid_kind::data, 1, 42 + salt);
  p.action = 7 + static_cast<parcel::action_id>(salt);
  p.arguments = util::to_bytes(std::string("shm-payload"), 123 + salt);
  p.source = 0;
  return p;
}

std::vector<std::byte> make_frame(int records) {
  std::vector<std::byte> buf;
  parcel::frame_begin(buf);
  for (int i = 0; i < records; ++i) {
    parcel::frame_append(buf, sample_parcel(i));
  }
  return buf;
}

template <typename Pred>
bool eventually(Pred&& pred, std::chrono::milliseconds timeout = 5000ms) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (!pred()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(1ms);
  }
  return true;
}

bool shm_name_exists(const std::string& name) {
  const int fd = ::shm_open(("/" + name).c_str(), O_RDONLY, 0);
  if (fd >= 0) {
    ::close(fd);
    return true;
  }
  return errno != ENOENT;
}

// ------------------------------------------------- whole-frame ingest seam

TEST(WholeFrameIngest, AcceptsValidFrameAndReturnsCount) {
  net::whole_frame_ingest ingest;
  const auto frame = make_frame(3);
  const auto count = ingest.accept(frame);
  ASSERT_TRUE(count.has_value());
  EXPECT_EQ(*count, 3u);
  EXPECT_FALSE(ingest.poisoned());
  // Repeated frames keep flowing — poison is for rejects only.
  EXPECT_TRUE(ingest.accept(make_frame(1)).has_value());
}

TEST(WholeFrameIngest, CorruptMagicPoisons) {
  net::whole_frame_ingest ingest;
  auto frame = make_frame(2);
  frame[0] = std::byte{0xEE};  // break the "PXBF" magic
  EXPECT_FALSE(ingest.accept(frame).has_value());
  EXPECT_TRUE(ingest.poisoned());
}

TEST(WholeFrameIngest, TruncatedRecordPoisons) {
  net::whole_frame_ingest ingest;
  auto frame = make_frame(2);
  frame.resize(frame.size() - 5);  // frame_view::parse must reject
  EXPECT_FALSE(ingest.accept(frame).has_value());
  EXPECT_TRUE(ingest.poisoned());
}

TEST(WholeFrameIngest, OversizeFramePoisons) {
  net::whole_frame_ingest ingest(64);  // tiny bound
  EXPECT_FALSE(ingest.accept(make_frame(4)).has_value());
  EXPECT_TRUE(ingest.poisoned());
}

TEST(WholeFrameIngest, PoisonIsSticky) {
  net::whole_frame_ingest ingest;
  auto bad = make_frame(1);
  bad[0] = std::byte{0x00};
  EXPECT_FALSE(ingest.accept(bad).has_value());
  // A perfectly valid frame after poison still refuses: there is no
  // trustworthy resync point on a corrupted link.
  EXPECT_FALSE(ingest.accept(make_frame(1)).has_value());
  EXPECT_TRUE(ingest.poisoned());
}

// ------------------------------------------------------ shm_segment RAII

TEST(ShmSegment, CreateAttachUnlinkLifetime) {
  const std::string name = "px.test-seg-" + std::to_string(::getpid());
  auto created = util::shm_segment::create(name, 4096);
  ASSERT_TRUE(created.valid());
  EXPECT_TRUE(shm_name_exists(name));

  auto opened = util::shm_segment::open_existing(name, 1000);
  ASSERT_TRUE(opened.valid());
  EXPECT_EQ(opened.size(), 4096u);

  // Both mappings alias the same physical pages.
  std::memcpy(created.data(), "hello", 6);
  EXPECT_STREQ(static_cast<const char*>(opened.data()), "hello");

  // Unlink retires the name; the mappings stay fully usable.
  created.unlink();
  EXPECT_FALSE(shm_name_exists(name));
  std::memcpy(opened.data(), "still", 6);
  EXPECT_STREQ(static_cast<const char*>(created.data()), "still");
}

TEST(ShmSegment, DestructorUnlinksWhatItCreated) {
  const std::string name = "px.test-raii-" + std::to_string(::getpid());
  {
    auto seg = util::shm_segment::create(name, 4096);
    EXPECT_TRUE(shm_name_exists(name));
  }
  EXPECT_FALSE(shm_name_exists(name));  // crash-safety backstop
}

// ------------------------------------------------- transport seam flags

TEST(Shm, BackendsDeclareWholeFrameDelivery) {
  net::shm_params sp;
  sp.rank = 0;
  sp.nranks = 1;
  net::shm_transport shm(sp);
  EXPECT_TRUE(shm.whole_frame_delivery());
  EXPECT_STREQ(shm.backend_name(), "shm");

  net::tcp_params tp;
  tp.rank = 0;
  tp.nranks = 1;
  net::tcp_transport tcp(tp);
  // The byte-stream backend keeps its frame_assembler.
  EXPECT_FALSE(tcp.whole_frame_delivery());
}

// ---------------------------------------------- two-instance ring tests

struct shm_pair {
  std::unique_ptr<net::shm_transport> a;  // rank 0
  std::unique_ptr<net::shm_transport> b;  // rank 1

  explicit shm_pair(std::size_t ring_bytes = 1u << 20) {
    net::shm_params p;
    p.nranks = 2;
    p.ring_bytes = ring_bytes;
    p.rank = 0;
    a = std::make_unique<net::shm_transport>(p);
    p.rank = 1;
    b = std::make_unique<net::shm_transport>(p);
  }

  // The creator side of connect_peers blocks until its peer attaches, so
  // an in-process pair must connect from two threads.
  void connect() {
    const std::vector<std::string> table = {a->listen_address(),
                                            b->listen_address()};
    std::thread ta([&] { a->connect_peers(table); });
    b->connect_peers(table);
    ta.join();
  }
};

TEST(Shm, DeliversWholeFramesAndUnlinksSegments) {
  shm_pair pair;
  const std::string tok_a = pair.a->listen_address();
  const std::string tok_b = pair.b->listen_address();

  std::atomic<int> got_units{0};
  std::vector<std::byte> got_payload;
  pair.a->set_handler(0, [](net::message&) {});
  pair.b->set_handler(1, [&](net::message& m) {
    got_payload = m.payload;  // copy: the buffer recycles after return
    got_units.fetch_add(m.units);
  });
  pair.connect();

  // Crash-safe lifetime: every name is retired the moment the mesh is up.
  EXPECT_FALSE(shm_name_exists(tok_a));
  EXPECT_FALSE(shm_name_exists(tok_b));
  EXPECT_FALSE(shm_name_exists(tok_a + ".p1"));

  const auto frame = make_frame(3);
  net::message m;
  m.source = 0;
  m.dest = 1;
  m.units = 3;
  m.payload = frame;
  pair.a->send(std::move(m));

  ASSERT_TRUE(eventually([&] { return got_units.load() == 3; }));
  EXPECT_EQ(got_payload, frame);  // byte-exact whole-frame delivery
  pair.a->drain();
  EXPECT_EQ(pair.a->in_flight(), 0u);
  EXPECT_EQ(pair.a->messages_sent_total(), 3u);
  EXPECT_EQ(pair.b->parcels_received_total(), 3u);
  EXPECT_EQ(pair.b->parcels_dropped_total(), 0u);

  pair.a->expect_peer_disconnects();
  pair.b->expect_peer_disconnects();
}

TEST(Shm, InFlightCountsUntilPeerConsumes) {
  shm_pair pair;
  std::atomic<bool> entered{false};
  std::atomic<bool> release{false};
  pair.a->set_handler(0, [](net::message&) {});
  pair.b->set_handler(1, [&](net::message&) {
    entered.store(true);
    while (!release.load()) std::this_thread::sleep_for(1ms);
  });
  pair.connect();

  net::message m;
  m.source = 0;
  m.dest = 1;
  m.units = 2;
  m.payload = make_frame(2);
  pair.a->send(std::move(m));

  // The frame reached the peer, but its handler has not returned: the
  // contract says those units are still in flight on the sender.
  ASSERT_TRUE(eventually([&] { return entered.load(); }));
  EXPECT_EQ(pair.a->in_flight(), 2u);
  release.store(true);
  pair.a->drain();
  EXPECT_EQ(pair.a->in_flight(), 0u);
  EXPECT_EQ(pair.b->parcels_received_total(), 2u);

  pair.a->expect_peer_disconnects();
  pair.b->expect_peer_disconnects();
}

TEST(Shm, GarbageFramePoisonsLinkNothingDelivered) {
  shm_pair pair;
  std::atomic<bool> delivered{false};
  pair.a->set_handler(0, [](net::message&) {});
  pair.b->set_handler(1, [&](net::message&) { delivered.store(true); });
  pair.connect();

  net::message m;
  m.source = 0;
  m.dest = 1;
  m.units = 1;
  m.payload = util::to_bytes(std::string("not a frame at all"));
  pair.a->send(std::move(m));

  // The receiver rejects via frame_view::parse and closes the link; with
  // no disconnect announced, the sender treats the closure as a death
  // verdict and conservatively charges the outstanding unit as lost.
  ASSERT_TRUE(
      eventually([&] { return pair.a->parcels_lost_total() == 1u; }));
  pair.a->drain();
  EXPECT_FALSE(delivered.load());
  EXPECT_EQ(pair.b->parcels_received_total(), 0u);
  EXPECT_EQ(pair.a->in_flight(), 0u);

  pair.a->expect_peer_disconnects();
  pair.b->expect_peer_disconnects();
}

TEST(Shm, OversizeFrameDropsWithDiagnosticNotWedge) {
  shm_pair pair(4096);  // tiny rings: max shippable record is 2048 bytes
  pair.a->set_handler(0, [](net::message&) {});
  pair.b->set_handler(1, [](net::message&) {});
  pair.connect();

  net::message m;
  m.source = 0;
  m.dest = 1;
  m.units = 1;
  m.payload.resize(3000);
  pair.a->send(std::move(m));

  // Dropped at send: a frame that can never fit must not park forever.
  EXPECT_EQ(pair.a->parcels_dropped_total(), 1u);
  pair.a->drain();
  EXPECT_EQ(pair.a->in_flight(), 0u);

  pair.a->expect_peer_disconnects();
  pair.b->expect_peer_disconnects();
}

TEST(Shm, ManySmallFramesFlowThroughRingWrap) {
  shm_pair pair(8192);  // force plenty of wrap-marker traffic
  std::atomic<std::uint64_t> got{0};
  pair.a->set_handler(0, [](net::message&) {});
  pair.b->set_handler(1, [&](net::message& m) { got.fetch_add(m.units); });
  pair.connect();

  constexpr int kFrames = 2000;
  for (int i = 0; i < kFrames; ++i) {
    net::message m;
    m.source = 0;
    m.dest = 1;
    m.units = 2;
    m.payload = make_frame(2);
    pair.a->send(std::move(m));
  }
  pair.a->drain();
  ASSERT_TRUE(eventually([&] { return got.load() == 2u * kFrames; }));
  EXPECT_EQ(pair.b->parcels_received_total(), 2u * kFrames);
  EXPECT_EQ(pair.a->parcels_dropped_total(), 0u);
  // Tiny ring + fast sender: the overflow queue must have engaged rather
  // than anything blocking or dropping.
  const auto extras = pair.a->extra_link_counters(0);
  ASSERT_EQ(extras.size(), 4u);
  EXPECT_STREQ(extras[0].name, "ring_full_waits");
  EXPECT_STREQ(extras[2].name, "peer_failed");
  EXPECT_STREQ(extras[3].name, "parcels_lost");

  pair.a->expect_peer_disconnects();
  pair.b->expect_peer_disconnects();
}

}  // namespace
