// Resilience: surviving rank loss.
//
// The headline tests fork real 4-rank machines over tcp and shm, SIGKILL a
// rank mid-storm via the PX_FAULT injection layer, and prove the survivors
// reach reduced-membership quiescence with the conservation books balanced
// minus the casualty (docs/resilience.md).  Satellites covered here:
//   * strict PX_FAULT grammar (malformed specs must refuse to parse),
//   * PR_SET_PDEATHSIG orphan-rank regression (children die with parents),
//   * orderly vs unexpected disconnect accounting, identical across the
//     tcp and shm backends,
//   * bootstrap partial failures (death before hello / during barrier /
//     between quiesce rounds) end in a clean nonzero exit, never a hang.

#include <gtest/gtest.h>

#include <dirent.h>
#include <signal.h>
#include <unistd.h>

#include <array>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <set>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "core/action.hpp"
#include "core/runtime.hpp"
#include "distributed_helpers.hpp"
#include "net/bootstrap.hpp"
#include "net/shm_transport.hpp"
#include "net/tcp_transport.hpp"
#include "parcel/migration.hpp"
#include "parcel/parcel.hpp"
#include "util/fault.hpp"
#include "util/serialize.hpp"
#include "util/subproc.hpp"

namespace {

using namespace px;
using namespace std::chrono_literals;
using px::util::fault_action;
using px::util::fault_injector;
using px::util::fault_plan;

template <typename Pred>
bool eventually(Pred&& pred, std::chrono::milliseconds timeout = 5000ms) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (!pred()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(1ms);
  }
  return true;
}

// ---------------------------------------------------------------- PX_FAULT

TEST(FaultPlan, ParsesKillSpec) {
  const auto plan = fault_plan::parse("kill:rank=2,after_parcels=500");
  ASSERT_TRUE(plan.has_value());
  ASSERT_EQ(plan->actions.size(), 1u);
  const auto& a = plan->actions[0];
  EXPECT_EQ(a.what, fault_action::kind::kill);
  EXPECT_EQ(a.rank, 2u);
  EXPECT_EQ(a.after_parcels, 500u);
}

TEST(FaultPlan, ParsesMultiSpecPlan) {
  const auto plan = fault_plan::parse(
      "drop:rank=1,after_parcels=10,count=3;"
      "delay:rank=0,after_parcels=100,ms=5;"
      "kill:rank=3");
  ASSERT_TRUE(plan.has_value());
  ASSERT_EQ(plan->actions.size(), 3u);
  EXPECT_EQ(plan->actions[0].what, fault_action::kind::drop);
  EXPECT_EQ(plan->actions[0].count, 3u);
  EXPECT_EQ(plan->actions[1].what, fault_action::kind::delay);
  EXPECT_EQ(plan->actions[1].ms, 5u);
  EXPECT_EQ(plan->actions[2].what, fault_action::kind::kill);
  EXPECT_EQ(plan->actions[2].rank, 3u);

  EXPECT_EQ(plan->for_rank(1).size(), 1u);
  EXPECT_EQ(plan->for_rank(0).size(), 1u);
  EXPECT_EQ(plan->for_rank(2).size(), 0u);
}

TEST(FaultPlan, ParsesPeerRestriction) {
  const auto plan = fault_plan::parse("drop:rank=0,peer=2");
  ASSERT_TRUE(plan.has_value());
  ASSERT_TRUE(plan->actions[0].peer.has_value());
  EXPECT_EQ(*plan->actions[0].peer, 2u);
}

// Parsing is strict: a spec that does not parse must refuse to arm rather
// than silently doing nothing.  CI negative-tests this matrix.
TEST(FaultPlan, RejectsMalformedSpecs) {
  const char* bad[] = {
      "",                                  // empty plan
      "kill",                              // no fields at all
      "explode:rank=1",                    // unknown action
      "kill:rank",                         // field without '='
      "kill:rank=",                        // empty value
      "kill:rank=two",                     // non-numeric value
      "kill:rank=1,flavor=spicy",          // unknown key
      "kill:after_parcels=10",             // missing mandatory rank
      "drop:rank=1,count=0",               // dropping nothing is a typo
      "kill:rank=99999999999999999999999", // u64 overflow
      "kill:rank=1;;kill:rank=2",          // empty spec between ';'
      "kill:rank=1;",                      // trailing empty spec
      "kill:rank=-1",                      // negative
      "kill:rank=1 ",                      // stray whitespace in a number
  };
  for (const char* spec : bad) {
    EXPECT_FALSE(fault_plan::parse(spec).has_value())
        << "spec should have been rejected: '" << spec << "'";
  }
}

TEST(FaultInjector, DropTakesWholeBatchesUpToCount) {
  const auto plan = fault_plan::parse("drop:rank=0,after_parcels=10,count=2");
  ASSERT_TRUE(plan.has_value());
  fault_injector inj(plan->actions, /*self_rank=*/0);
  EXPECT_EQ(inj.on_send(1, 4), 0u);   // 4 accepted, below threshold
  EXPECT_EQ(inj.on_send(1, 6), 6u);   // hits 10: whole batch dropped (1/2)
  EXPECT_EQ(inj.on_send(1, 3), 3u);   // second consecutive batch (2/2)
  EXPECT_EQ(inj.on_send(1, 5), 0u);   // count exhausted, traffic flows
}

TEST(FaultInjector, PeerFilterOnlyFiresTowardNamedPeer) {
  const auto plan = fault_plan::parse("drop:rank=0,peer=2");
  ASSERT_TRUE(plan.has_value());
  fault_injector inj(plan->actions, /*self_rank=*/0);
  EXPECT_EQ(inj.on_send(1, 5), 0u);  // wrong peer: untouched
  EXPECT_EQ(inj.on_send(2, 5), 5u);  // named peer: dropped
  EXPECT_EQ(inj.on_send(2, 5), 0u);  // count=1 default: spent
}

TEST(FaultInjector, ActionsForOtherRanksNeverArm) {
  const auto plan = fault_plan::parse("kill:rank=3");
  ASSERT_TRUE(plan.has_value());
  fault_injector inj(plan->actions, /*self_rank=*/0);
  EXPECT_TRUE(inj.empty());
  EXPECT_EQ(inj.on_send(1, 1000), 0u);  // and a kill for rank 3 never fires
}

// ------------------------------------------------- orphan-rank regression

// Helper bodies for the PDEATHSIG test, driven via --gtest_filter from the
// parent (DISABLED_ keeps them out of normal runs).
TEST(Resilience, DISABLED_SleepForever) {
  // Grandchild: if PR_SET_PDEATHSIG works we never get to finish this.
  std::this_thread::sleep_for(std::chrono::seconds(60));
}

TEST(Resilience, DISABLED_MiddleParent) {
  // Spawn a grandchild through util::spawn_process (which arms
  // PR_SET_PDEATHSIG in the child), publish its pid, then hang until the
  // test parent SIGKILLs us.
  const char* pidfile = std::getenv("PXTEST_PIDFILE");
  ASSERT_NE(pidfile, nullptr);
  const std::vector<std::string> argv = {
      px::util::self_exe_path(),
      "--gtest_filter=Resilience.DISABLED_SleepForever",
      "--gtest_also_run_disabled_tests",
  };
  const pid_t grandchild = px::util::spawn_process(argv, {});
  {
    std::ofstream out(std::string(pidfile) + ".tmp");
    out << grandchild << "\n";
  }
  // Atomic publish so the parent never reads a half-written pid.
  std::rename((std::string(pidfile) + ".tmp").c_str(), pidfile);
  std::this_thread::sleep_for(std::chrono::seconds(60));
}

// A rank wrapper (util::spawn_process child) must not outlive the process
// that launched it: launcher death reaps the whole machine, leaving no
// orphan ranks grinding on.  Regression for the PR_SET_PDEATHSIG fix.
TEST(Resilience, ChildDiesWhenParentIsKilled) {
  const std::string pidfile =
      ::testing::TempDir() + "px_pdeathsig_pid." + std::to_string(::getpid());
  std::remove(pidfile.c_str());
  const std::vector<std::string> argv = {
      px::util::self_exe_path(),
      "--gtest_filter=Resilience.DISABLED_MiddleParent",
      "--gtest_also_run_disabled_tests",
  };
  const pid_t middle =
      px::util::spawn_process(argv, {{"PXTEST_PIDFILE", pidfile}});

  // Wait for the grandchild pid to be published.
  pid_t grandchild = 0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (std::chrono::steady_clock::now() < deadline) {
    std::ifstream in(pidfile);
    if (in >> grandchild && grandchild > 0) break;
    grandchild = 0;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_GT(grandchild, 0) << "middle parent never published grandchild pid";
  ASSERT_EQ(::kill(grandchild, 0), 0) << "grandchild not alive before kill";

  // SIGKILL the middle parent: no atexit, no signal handler, nothing — only
  // the kernel-side PDEATHSIG can reap the grandchild.
  ASSERT_EQ(::kill(middle, SIGKILL), 0);
  EXPECT_EQ(px::util::wait_exit(middle, 10'000), -1);  // signal death

  bool died = false;
  const auto kill_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < kill_deadline) {
    if (::kill(grandchild, 0) == -1 && errno == ESRCH) {
      died = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  if (!died) ::kill(grandchild, SIGKILL);  // don't leak it on failure
  EXPECT_TRUE(died)
      << "grandchild survived its parent's SIGKILL: PR_SET_PDEATHSIG lost";
  std::remove(pidfile.c_str());
}

// -------------------------------------------- multi-rank launch plumbing

// Like px::test::run_ranks, but with extra environment shared by every
// rank and a per-rank expected exit: 0 for a clean survivor, -1 for the
// rank the fault plan SIGKILLs (wait_exit reports signal death as -1).
void run_ranks_with_env(
    int nranks, const std::string& test_name, const std::string& backend,
    const std::vector<std::pair<std::string, std::string>>& extra,
    const std::vector<int>& expected_exit) {
  ASSERT_EQ(static_cast<int>(expected_exit.size()), nranks);
  const int root_port = util::pick_free_tcp_port();
  const std::vector<std::string> argv = {
      util::self_exe_path(),
      "--gtest_filter=" + test_name,
      "--gtest_also_run_disabled_tests",
  };
  std::vector<pid_t> pids;
  for (int r = 0; r < nranks; ++r) {
    auto env = util::net_rank_env(r, nranks, root_port, backend);
    env.insert(env.end(), extra.begin(), extra.end());
    pids.push_back(util::spawn_process(argv, env));
  }
  for (int r = 0; r < nranks; ++r) {
    EXPECT_EQ(util::wait_exit(pids[r], 100'000), expected_exit[r])
        << test_name << ": rank " << r << " of " << nranks;
  }
}

// The per-survivor ledger a kill-storm rank publishes for the parent's
// machine-wide conservation check.  One whitespace-separated line, written
// atomically (tmp + rename) so the parent never reads a torn file.
struct survivor_books {
  std::uint64_t sent = 0;            // locality parcels_sent
  std::uint64_t delivered = 0;       // locality parcels_delivered
  std::uint64_t forwarded = 0;       // locality parcels_forwarded
  std::uint64_t loc_dropped = 0;     // locality parcels_dropped (route drops)
  std::uint64_t net_dropped = 0;     // transport drops (dead-link folds)
  std::uint64_t net_lost = 0;        // units charged against the casualty
  std::uint64_t recv_from_dead = 0;  // units the casualty delivered to us
  std::uint64_t gids_lost = 0;
  std::uint64_t peers_failed = 0;
};

void write_books(const std::string& path, const survivor_books& b) {
  {
    std::ofstream out(path + ".tmp");
    out << b.sent << ' ' << b.delivered << ' ' << b.forwarded << ' '
        << b.loc_dropped << ' ' << b.net_dropped << ' ' << b.net_lost << ' '
        << b.recv_from_dead << ' ' << b.gids_lost << ' ' << b.peers_failed
        << '\n';
  }
  std::rename((path + ".tmp").c_str(), path.c_str());
}

bool read_books(const std::string& path, survivor_books& b) {
  std::ifstream in(path);
  return static_cast<bool>(in >> b.sent >> b.delivered >> b.forwarded >>
                           b.loc_dropped >> b.net_dropped >> b.net_lost >>
                           b.recv_from_dead >> b.gids_lost >> b.peers_failed);
}

std::set<std::string> shm_px_entries() {
  std::set<std::string> out;
  if (DIR* d = ::opendir("/dev/shm")) {
    while (const dirent* e = ::readdir(d)) {
      if (std::string(e->d_name).rfind("px.", 0) == 0) out.insert(e->d_name);
    }
    ::closedir(d);
  }
  return out;
}

// ------------------------------------------------------ kill mid-storm

std::atomic<std::uint64_t> g_storm_hits{0};
void resil_storm_hit() { g_storm_hits.fetch_add(1); }
PX_REGISTER_ACTION(resil_storm_hit)

constexpr std::uint32_t kDoomedRank = 2;
constexpr std::uint64_t kStormPerPeer = 400;

// Every rank storms one-way parcels at every other rank; the injector
// SIGKILLs rank 2 mid-call once it has pushed a third of its own storm
// onto the wire.  Only survivors get past run(): its return IS the
// reduced-membership quiescence verdict (the quiesce rounds cannot close
// until every live rank agrees on the dead mask and has folded the
// casualty out of its sent/delivered totals).
void kill_storm_rank_body() {
  core::runtime rt;
  const auto n = static_cast<std::uint32_t>(rt.num_localities());
  // Warm-up round, fully quiesced before the storm.  The lost charge at
  // fold time is cumulative-sent-minus-dropped toward the casualty, so
  // this guarantees every survivor's charge is positive: without it, a
  // rank-2 child racing far ahead under load can reach its kill threshold
  // before any survivor put a unit on the wire toward it, and every
  // survivor unit then retires as a post-fold drop with nothing charged
  // lost (the parent asserts net_lost > 0).  Rank 2's own warm-up sends
  // stay far below the PX_FAULT threshold, so it always survives to the
  // storm.
  rt.run([&] {
    for (std::uint32_t r = 0; r < n; ++r) {
      if (r == rt.rank()) continue;
      for (std::uint64_t i = 0; i < 8; ++i) {
        core::apply<&resil_storm_hit>(rt.locality_gid(r));
      }
    }
  });
  rt.run([&] {
    for (std::uint32_t r = 0; r < n; ++r) {
      if (r == rt.rank()) continue;
      for (std::uint64_t i = 0; i < kStormPerPeer; ++i) {
        core::apply<&resil_storm_hit>(rt.locality_gid(r));
      }
    }
  });
  EXPECT_NE(rt.rank(), kDoomedRank);
  EXPECT_EQ(rt.lost_peer_mask(), 1ull << kDoomedRank);
  // The quiesce verdict excludes the casualty's column via the control
  // plane's dead mask, so it can land a beat before this rank's transport
  // has processed the deferred link close (the fold runs on the progress
  // thread, which owns the sockets).  Wait for the fold — the lost-units
  // figure below is only frozen once it completes.
  ASSERT_TRUE(eventually([&] {
    return rt.dist()->peers_failed_total() == 1;
  })) << "transport never folded the casualty";

  // Snapshot at the globally quiescent point — nothing is in flight among
  // the live ranks — and publish for the parent's conservation check.
  const auto st = rt.here().stats();
  survivor_books b;
  b.sent = st.parcels_sent;
  b.delivered = st.parcels_delivered;
  b.forwarded = st.parcels_forwarded;
  b.loc_dropped = st.parcels_dropped;
  b.net_dropped = rt.dist()->parcels_dropped_total();
  b.net_lost = rt.dist()->parcels_lost_total();
  b.recv_from_dead = rt.dist()->units_received_from(kDoomedRank);
  b.gids_lost = rt.gids_lost();
  b.peers_failed = rt.dist()->peers_failed_total();
  const char* out = std::getenv("PXTEST_BOOKS");
  ASSERT_NE(out, nullptr);
  write_books(std::string(out) + "." + std::to_string(rt.rank()), b);
  rt.stop();
}

void run_kill_storm(const std::string& test_name, const std::string& backend) {
  const std::string books = ::testing::TempDir() + "px_books_" + backend +
                            "." + std::to_string(::getpid());
  for (int r = 0; r < 4; ++r) {
    std::remove((books + "." + std::to_string(r)).c_str());
  }
  // The SIGKILL is detected via heartbeat-channel EOF, so the lease is a
  // backstop, not the detection path — keep it generous enough that a
  // scheduling stall under parallel test load cannot fake a second death
  // mid-storm.  The kill threshold lands mid-storm (rank 2 sends
  // 3 * kStormPerPeer units in total).
  run_ranks_with_env(4, test_name, backend,
                     {{"PX_FAULT", "kill:rank=2,after_parcels=400"},
                      {"PX_LEASE_MS", "5000"},
                      {"PX_HEARTBEAT_INTERVAL_US", "20000"},
                      {"PXTEST_BOOKS", books}},
                     {0, 0, -1, 0});

  // Machine-wide conservation minus the casualty.  Summing the survivors'
  // books, every parcel sent was delivered live, dropped with the drop
  // recorded, or charged lost against the dead rank.  Units the casualty
  // itself delivered before dying (recv_from_dead) sit in the survivors'
  // delivered totals with no matching surviving sender — they are the one
  // asymmetry, added back on the sent side:
  //   sum(sent) + sum(recv_from_dead)
  //     == sum(delivered - forwarded) + sum(dropped) + sum(lost)
  survivor_books sum;
  int reports = 0;
  for (int r = 0; r < 4; ++r) {
    if (r == static_cast<int>(kDoomedRank)) continue;
    survivor_books b;
    ASSERT_TRUE(read_books(books + "." + std::to_string(r), b))
        << "rank " << r << " never published its books";
    sum.sent += b.sent;
    sum.delivered += b.delivered;
    sum.forwarded += b.forwarded;
    sum.loc_dropped += b.loc_dropped;
    sum.net_dropped += b.net_dropped;
    sum.net_lost += b.net_lost;
    sum.recv_from_dead += b.recv_from_dead;
    sum.peers_failed += b.peers_failed;
    ++reports;
    std::remove((books + "." + std::to_string(r)).c_str());
  }
  ASSERT_EQ(reports, 3);
  EXPECT_EQ(sum.sent + sum.recv_from_dead,
            (sum.delivered - sum.forwarded) + sum.loc_dropped +
                sum.net_dropped + sum.net_lost);
  // Traffic toward the casualty was in flight when it died: something must
  // have been charged lost, and each survivor counted exactly one death.
  EXPECT_GT(sum.net_lost, 0u);
  EXPECT_EQ(sum.peers_failed, 3u);
}

TEST(Resilience, KillRankMidStormTcp4) {
  if (px::test::is_rank_child()) {
    kill_storm_rank_body();
    return;
  }
  run_kill_storm("Resilience.KillRankMidStormTcp4", "tcp");
}

TEST(Resilience, KillRankMidStormShm4) {
  if (px::test::is_rank_child()) {
    kill_storm_rank_body();
    return;
  }
  const auto before = shm_px_entries();
  run_kill_storm("Resilience.KillRankMidStormShm4", "shm");
  // Crash-safety: shm segment names unlink the moment the mesh is up, so a
  // SIGKILLed rank must leak nothing into /dev/shm.  (Poll briefly: another
  // concurrently booting suite may hold a transient segment of its own.)
  EXPECT_TRUE(eventually([&] {
    for (const auto& name : shm_px_entries()) {
      if (before.count(name) == 0) return false;
    }
    return true;
  })) << "rank loss leaked a px.* segment in /dev/shm";
}

// ------------------------------------------------- directory re-homing

struct resil_payload {
  std::uint64_t value = 0;

  template <typename Ar>
  friend void serialize(Ar& ar, resil_payload& p) {
    ar& p.value;
  }
};
PX_REGISTER_MIGRATABLE(resil_payload)

std::array<std::atomic<std::uint64_t>, 2> g_resil_objs{};
void resil_announce(std::uint64_t slot, std::uint64_t bits) {
  g_resil_objs[slot].store(bits);
}
PX_REGISTER_ACTION(resil_announce)

std::atomic<std::uint64_t> g_resil_pokes{0};
void resil_poke() { g_resil_pokes.fetch_add(1); }
PX_REGISTER_ACTION(resil_poke)

// Object A is homed at the doomed rank but resident on a survivor: its
// directory authority re-homes to the successor (next live rank after the
// casualty) and it stays reachable.  Object B migrated *onto* the doomed
// rank: it dies with the process, its home unbinds it and charges
// gids_lost, and parcels aimed at it drop instead of wedging the machine.
void rehome_rank_body() {
  core::runtime rt;
  ASSERT_TRUE(rt.migration_enabled());
  const auto n = static_cast<std::uint32_t>(rt.num_localities());

  // Phase 1: create and announce.  A homed at rank 2, B homed at rank 1.
  rt.run([&] {
    if (rt.rank() == 2) {
      const gas::gid a = rt.new_migratable<resil_payload>(2, 7ull);
      for (std::uint32_t r = 0; r < n; ++r) {
        core::apply<&resil_announce>(rt.locality_gid(r), 0ull, a.bits());
      }
    }
    if (rt.rank() == 1) {
      const gas::gid b = rt.new_migratable<resil_payload>(1, 9ull);
      for (std::uint32_t r = 0; r < n; ++r) {
        core::apply<&resil_announce>(rt.locality_gid(r), 1ull, b.bits());
      }
    }
  });
  const gas::gid obj_a = gas::gid::from_bits(g_resil_objs[0].load());
  const gas::gid obj_b = gas::gid::from_bits(g_resil_objs[1].load());
  ASSERT_TRUE(obj_a.valid());
  ASSERT_TRUE(obj_b.valid());

  // Phase 2: A moves off its doomed home; B moves onto the doomed rank.
  rt.run([&] {
    if (rt.rank() == 2) {
      EXPECT_TRUE(rt.migrate_gid(obj_a, 0));
    }
    if (rt.rank() == 1) {
      EXPECT_TRUE(rt.migrate_gid(obj_b, 2));
    }
  });

  // Poke baseline, snapshotted *before* the kill barrier: after phase 3's
  // verdict a peer can race ahead into phase 4 and have its pokes
  // delivered here while this thread is still between the verdict and the
  // load — a later snapshot would absorb those pokes and undercount the
  // phase-4 delta.  No resil_poke exists before phase 4, so this is safe.
  const std::uint64_t before = g_resil_pokes.load();

  // Phase 3: the kill.  Survivors' run() completes only once the loss is
  // detected, agreed machine-wide, and folded into everyone's books.
  rt.run([&] {
    if (rt.rank() == 2) ::raise(SIGKILL);
  });
  EXPECT_EQ(rt.lost_peer_mask(), 1ull << 2);
  if (rt.rank() == 1) {
    // B's home saw its resident die: unbound + charged lost.
    EXPECT_GE(rt.gids_lost(), 1u);
  }

  // Phase 4: A is still reachable through the successor's adopted shard.
  // Drop the local hint first so the pokes exercise the re-homed directory
  // (rank 0 == next live rank after 2), not a warm cache.
  rt.gas().invalidate_cache(rt.rank(), obj_a);
  rt.run([&] {
    for (int i = 0; i < 10; ++i) core::apply<&resil_poke>(obj_a);
  });
  if (rt.rank() == 0) {
    EXPECT_EQ(g_resil_pokes.load() - before, 2u * 10u);
  }

  // Phase 5: parcels for the dead-resident B retire as drops — this run()
  // returning (quiescence) is the no-wedge proof.
  rt.run([&] {
    if (rt.rank() != 0) return;
    for (int i = 0; i < 5; ++i) core::apply<&resil_poke>(obj_b);
  });
  if (rt.rank() == 0) {
    EXPECT_EQ(g_resil_pokes.load() - before, 2u * 10u);  // none landed
  }
  rt.stop();
}

TEST(Resilience, KillRankReHomesDirectory) {
  if (px::test::is_rank_child()) {
    rehome_rank_body();
    return;
  }
  run_ranks_with_env(3, "Resilience.KillRankReHomesDirectory", "tcp",
                     {{"PX_LEASE_MS", "5000"},
                      {"PX_HEARTBEAT_INTERVAL_US", "20000"}},
                     {0, 0, -1});
}

// ------------------------------------------- bootstrap partial failures

// A rank that dies while the machine is still forming (no peer-down
// handler armed yet — survive mode only exists post-boot) must take the
// machine down with a clean nonzero exit inside the lease, never a hang.
// The children drive net::bootstrap directly with tight timeouts; rank 1
// is the casualty in every mode.
void boot_failure_rank_body(int mode) {
  const char* rank_s = std::getenv("PX_NET_RANK");
  const char* nranks_s = std::getenv("PX_NET_RANKS");
  const char* root_s = std::getenv("PX_NET_ROOT");
  ASSERT_NE(rank_s, nullptr);
  ASSERT_NE(nranks_s, nullptr);
  ASSERT_NE(root_s, nullptr);
  net::bootstrap_params bp;
  bp.rank = static_cast<std::uint32_t>(std::atoi(rank_s));
  bp.nranks = static_cast<std::uint32_t>(std::atoi(nranks_s));
  bp.root = root_s;
  bp.connect_timeout_ms = 3'000;
  bp.heartbeat_interval_us = 20'000;
  bp.lease_ms = 1'000;

  if (mode == 0 && bp.rank == 1) ::raise(SIGKILL);  // dead before hello
  net::bootstrap bs(bp);
  const std::array<std::byte, 4> blob{std::byte{1}, std::byte{2},
                                      std::byte{3}, std::byte{4}};
  bs.exchange("ep" + std::to_string(bp.rank),
              std::span<const std::byte>(blob));
  if (mode == 1) {
    if (bp.rank == 1) ::raise(SIGKILL);  // dead during the barrier
    bs.barrier();
  } else if (mode == 2) {
    bs.quiesce_round(true, 7, 0, 0);     // one healthy round first
    if (bp.rank == 1) ::raise(SIGKILL);  // dead between quiesce rounds
    for (;;) {
      if (bs.quiesce_round(true, 7, 0, 0)) break;
    }
  }
  // Unreachable for the survivors: the casualty's silence must have
  // fail-fasted this process out of the collective above.
  std::_Exit(0);
}

void run_boot_failure(const std::string& test_name) {
  const int root_port = util::pick_free_tcp_port();
  const std::vector<std::string> argv = {
      util::self_exe_path(),
      "--gtest_filter=" + test_name,
      "--gtest_also_run_disabled_tests",
  };
  std::vector<pid_t> pids;
  for (int r = 0; r < 3; ++r) {
    pids.push_back(util::spawn_process(
        argv, util::net_rank_env(r, 3, root_port, "tcp")));
  }
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_EQ(util::wait_exit(pids[1], 20'000), -1);  // the SIGKILLed rank
  for (const int r : {0, 2}) {
    const int code = util::wait_exit(pids[r], 20'000);
    EXPECT_NE(code, 0) << "rank " << r
                       << " exited clean from a half-dead boot";
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - t0);
    EXPECT_LT(elapsed.count(), 15'000)
        << "rank " << r << " hung past the lease + connect timeout";
  }
}

TEST(Resilience, BootDeathBeforeHelloFailsFast) {
  if (px::test::is_rank_child()) {
    boot_failure_rank_body(0);
    return;
  }
  run_boot_failure("Resilience.BootDeathBeforeHelloFailsFast");
}

TEST(Resilience, BootDeathDuringBarrierFailsFast) {
  if (px::test::is_rank_child()) {
    boot_failure_rank_body(1);
    return;
  }
  run_boot_failure("Resilience.BootDeathDuringBarrierFailsFast");
}

TEST(Resilience, BootDeathBetweenQuiesceRoundsFailsFast) {
  if (px::test::is_rank_child()) {
    boot_failure_rank_body(2);
    return;
  }
  run_boot_failure("Resilience.BootDeathBetweenQuiesceRoundsFailsFast");
}

// ------------------------------- disconnect accounting, tcp and shm alike

parcel::parcel resil_sample_parcel(int salt = 0) {
  parcel::parcel p;
  p.destination = gas::gid::make(gas::gid_kind::data, 1, 42 + salt);
  p.action = 7 + static_cast<parcel::action_id>(salt);
  p.arguments = util::to_bytes(std::string("resil-payload"), 123 + salt);
  p.source = 0;
  return p;
}

std::vector<std::byte> resil_make_frame(int records) {
  std::vector<std::byte> buf;
  parcel::frame_begin(buf);
  for (int i = 0; i < records; ++i) {
    parcel::frame_append(buf, resil_sample_parcel(i));
  }
  return buf;
}

// One in-process transport pair per backend; `a` is rank 0, `b` rank 1.
// The creator side of connect blocks until its peer attaches, so the pair
// connects from two threads.
template <typename Transport, typename Params>
struct transport_pair {
  std::unique_ptr<Transport> a;
  std::unique_ptr<Transport> b;

  transport_pair() {
    Params p;
    p.nranks = 2;
    p.rank = 0;
    a = std::make_unique<Transport>(p);
    p.rank = 1;
    b = std::make_unique<Transport>(p);
  }

  void connect() {
    const std::vector<std::string> table = {a->listen_address(),
                                            b->listen_address()};
    std::thread ta([&] { a->connect_peers(table); });
    b->connect_peers(table);
    ta.join();
  }
};

// Shared body: one frame each way, then tear `a` down.  Orderly mode arms
// expect_peer_disconnects() on the watcher first; unexpected mode does not
// and must see the full death bookkeeping — the peer marked dead, the
// units it was sent charged lost, and the death handler fired.
template <typename Pair>
void disconnect_accounting_body(bool orderly) {
  Pair pair;
  std::atomic<std::uint64_t> b_units{0};
  pair.a->set_handler(0, [](net::message&) {});
  pair.b->set_handler(1, [&](net::message& m) { b_units.fetch_add(m.units); });
  std::atomic<std::uint64_t> deaths{0};
  std::atomic<std::size_t> dead_rank{99};
  pair.b->set_peer_death_handler([&](std::size_t r) {
    dead_rank.store(r);
    deaths.fetch_add(1);
  });
  pair.connect();

  {
    net::message m;
    m.source = 0;
    m.dest = 1;
    m.units = 3;
    m.payload = resil_make_frame(3);
    pair.a->send(std::move(m));
  }
  ASSERT_TRUE(eventually([&] { return b_units.load() == 3; }));
  {
    net::message m;
    m.source = 1;
    m.dest = 0;
    m.units = 2;
    m.payload = resil_make_frame(2);
    pair.b->send(std::move(m));
  }
  ASSERT_TRUE(eventually([&] {
    return pair.a->parcels_received_total() == 2;
  }));

  if (orderly) pair.b->expect_peer_disconnects();
  pair.a.reset();  // rank 0 goes away; only b's books are under test

  if (orderly) {
    ASSERT_TRUE(eventually([&] {
      return pair.b->orderly_disconnects() == 1;
    })) << "orderly close never accounted";
    EXPECT_EQ(pair.b->unexpected_disconnects(), 0u);
    EXPECT_EQ(pair.b->peers_failed_total(), 0u);
    EXPECT_EQ(pair.b->parcels_lost_total(), 0u);
    EXPECT_EQ(pair.b->dead_peer_mask(), 0u);
    EXPECT_EQ(deaths.load(), 0u);
  } else {
    ASSERT_TRUE(eventually([&] {
      return pair.b->unexpected_disconnects() == 1;
    })) << "unexpected close never accounted";
    EXPECT_EQ(pair.b->orderly_disconnects(), 0u);
    EXPECT_EQ(pair.b->peers_failed_total(), 1u);
    // The 2 units b sent toward the dead rank are charged lost — the
    // conservative fold: nobody can prove the casualty acted on them.
    EXPECT_EQ(pair.b->parcels_lost_total(), 2u);
    EXPECT_EQ(pair.b->dead_peer_mask(), 1u);
    EXPECT_TRUE(eventually([&] { return deaths.load() == 1; }));
    EXPECT_EQ(dead_rank.load(), 0u);
  }
}

using shm_disc_pair = transport_pair<net::shm_transport, net::shm_params>;
using tcp_disc_pair = transport_pair<net::tcp_transport, net::tcp_params>;

TEST(Resilience, ShmOrderlyDisconnectIsNotDeath) {
  disconnect_accounting_body<shm_disc_pair>(true);
}

TEST(Resilience, ShmUnexpectedDisconnectChargesLossAndFiresHandler) {
  disconnect_accounting_body<shm_disc_pair>(false);
}

TEST(Resilience, TcpOrderlyDisconnectIsNotDeath) {
  disconnect_accounting_body<tcp_disc_pair>(true);
}

TEST(Resilience, TcpUnexpectedDisconnectChargesLossAndFiresHandler) {
  disconnect_accounting_body<tcp_disc_pair>(false);
}

// ------------------------------------------------- wire-byte determinism

// With PX_FAULT unset the resilience layer must be invisible on the data
// plane: two identical runs put byte-identical traffic on the wire.
// PX_PARCEL_FLUSH_COUNT=1 pins the (timing-dependent) coalescing layer to
// one frame per parcel so the byte totals are scheduling-independent.
void determinism_rank_body() {
  core::runtime rt;
  const auto n = static_cast<std::uint32_t>(rt.num_localities());
  rt.run([&] {
    for (std::uint32_t r = 0; r < n; ++r) {
      if (r == rt.rank()) continue;
      for (int i = 0; i < 50; ++i) {
        core::apply<&resil_storm_hit>(rt.locality_gid(r));
      }
    }
  });
  const auto link =
      rt.dist()->link(static_cast<net::endpoint_id>(rt.rank()));
  const char* out = std::getenv("PXTEST_BOOKS");
  ASSERT_NE(out, nullptr);
  {
    std::ofstream f(std::string(out) + "." + std::to_string(rt.rank()) +
                    ".tmp");
    f << link.bytes_tx << '\n';
  }
  std::rename((std::string(out) + "." + std::to_string(rt.rank()) + ".tmp")
                  .c_str(),
              (std::string(out) + "." + std::to_string(rt.rank())).c_str());
  rt.stop();
}

TEST(Resilience, WireBytesIdenticalWithoutFaults) {
  if (px::test::is_rank_child()) {
    determinism_rank_body();
    return;
  }
  std::array<std::array<std::uint64_t, 4>, 2> bytes{};
  for (int run = 0; run < 2; ++run) {
    const std::string books = ::testing::TempDir() + "px_det_run" +
                              std::to_string(run) + "." +
                              std::to_string(::getpid());
    run_ranks_with_env(4, "Resilience.WireBytesIdenticalWithoutFaults",
                       "tcp",
                       {{"PX_PARCEL_FLUSH_COUNT", "1"},
                        {"PXTEST_BOOKS", books}},
                       {0, 0, 0, 0});
    for (int r = 0; r < 4; ++r) {
      const std::string path = books + "." + std::to_string(r);
      std::ifstream in(path);
      ASSERT_TRUE(in >> bytes[run][r]) << "run " << run << " rank " << r;
      std::remove(path.c_str());
    }
  }
  for (int r = 0; r < 4; ++r) {
    EXPECT_GT(bytes[0][r], 0u) << "rank " << r << " sent nothing";
    EXPECT_EQ(bytes[0][r], bytes[1][r])
        << "rank " << r << ": wire bytes differ between identical runs — "
           "the resilience layer leaked onto the data plane";
  }
}

}  // namespace
