// Tests: echo copy semantics (split-phase commit, staleness, retry) and
// percolation (prestaging, back-pressure, completion).
#include <gtest/gtest.h>

#include <atomic>

#include "core/echo.hpp"
#include "core/percolation.hpp"
#include "core/runtime.hpp"

namespace {

using namespace px;
using core::runtime;
using core::runtime_params;

runtime_params quick_params(std::size_t localities, unsigned workers = 2) {
  runtime_params p;
  p.localities = localities;
  p.workers_per_locality = workers;
  return p;
}

// -------------------------------------------------------------------- echo

TEST(Echo, ReadReturnsInitialEverywhere) {
  runtime rt(quick_params(3));
  rt.start();
  core::echo<int> var(rt, 0, 41);
  rt.run([&] {
    auto [v0, ver0] = var.read();
    EXPECT_EQ(v0, 41);
    EXPECT_EQ(ver0, 1u);
  });
  // Read from a non-home locality's thread too.
  std::atomic<int> seen{0};
  rt.at(2).spawn([&] { seen.store(var.read().first); });
  rt.wait_quiescent();
  EXPECT_EQ(seen.load(), 41);
}

TEST(Echo, CommitWithCurrentVersionSucceedsAndPropagates) {
  runtime rt(quick_params(3));
  rt.start();
  core::echo<int> var(rt, 0, 1);
  rt.run([&] {
    auto [v, ver] = var.read();
    EXPECT_TRUE(var.commit(ver, v + 99).get());
  });
  // After quiescence every replica saw the broadcast.
  std::atomic<int> at2{0};
  rt.at(2).spawn([&] { at2.store(var.read().first); });
  rt.wait_quiescent();
  EXPECT_EQ(at2.load(), 100);
  EXPECT_EQ(rt.echo_mgr().stats().commits_ok, 1u);
}

TEST(Echo, StaleCommitIsRejected) {
  runtime rt(quick_params(2));
  rt.start();
  core::echo<int> var(rt, 0, 10);
  rt.run([&] {
    auto [v, ver] = var.read();
    EXPECT_TRUE(var.commit(ver, v + 1).get());   // version -> 2
    EXPECT_FALSE(var.commit(ver, v + 2).get());  // stale: still quotes ver 1
  });
  EXPECT_EQ(rt.echo_mgr().stats().commits_stale, 1u);
}

TEST(Echo, UpdateRetriesUntilCommitted) {
  runtime rt(quick_params(4));
  rt.start();
  core::echo<int> var(rt, 0, 0);
  constexpr int kWriters = 16;
  rt.run([&] {
    lco::and_gate done(kWriters);
    for (int i = 0; i < kWriters; ++i) {
      const auto where = static_cast<gas::locality_id>(i % 4);
      rt.at(where).spawn([&] {
        var.update([](int x) { return x + 1; });
        done.signal();
      });
    }
    done.wait();
  });
  rt.run([&] {
    // The home copy has all increments (update() validates at the home).
    auto [bytes, ver] = rt.echo_mgr().home_read(var.id());
    EXPECT_EQ(util::from_bytes<int>(bytes), kWriters);
    EXPECT_EQ(ver, static_cast<std::uint64_t>(kWriters) + 1);
  });
}

TEST(Echo, SplitPhaseOverlapsComputeWithVerification) {
  // The defining property: between commit() and .get() the thread keeps
  // computing with its optimistic value.
  runtime_params p = quick_params(2);
  p.fabric.base_latency_ns = 500'000;  // 0.5ms round trip, easily visible
  runtime rt(p);
  rt.start();
  core::echo<int> var(rt, 1, 5);
  rt.run([&] {
    auto [v, ver] = var.read();  // immediate, local
    auto ack = var.commit(ver, v * 2);
    // Overlapped work while the coherency verification is in flight.
    int local_progress = 0;
    while (!ack.is_ready()) ++local_progress;
    EXPECT_TRUE(ack.get());
    EXPECT_GT(local_progress, 0);  // we really did overlap
  });
}

TEST(Echo, StructuredValueType) {
  struct vec3 {
    double x = 0, y = 0, z = 0;
  };
  runtime rt(quick_params(2));
  rt.start();
  core::echo<std::vector<double>> var(rt, 0, {1.0, 2.0});
  rt.run([&] {
    auto [v, ver] = var.read();
    v.push_back(3.0);
    EXPECT_TRUE(var.commit(ver, v).get());
    auto [v2, ver2] = var.read();
    EXPECT_EQ(v2.size(), 3u);
    EXPECT_EQ(ver2, 2u);
  });
}

// ------------------------------------------------------------- percolation

int times_two(int x) { return 2 * x; }
PX_REGISTER_ACTION(times_two)

std::atomic<int> g_perc_running{0};
std::atomic<int> g_perc_peak{0};

void slow_task(int) {
  const int now = g_perc_running.fetch_add(1) + 1;
  int prev = g_perc_peak.load();
  while (prev < now && !g_perc_peak.compare_exchange_weak(prev, now)) {
  }
  for (int i = 0; i < 64; ++i) px::threads::scheduler::yield();
  g_perc_running.fetch_sub(1);
}
PX_REGISTER_ACTION(slow_task)

TEST(Percolation, RunsAtTargetAndReturnsResult) {
  runtime rt(quick_params(2));
  rt.start();
  int result = 0;
  rt.run([&] { result = core::percolate<&times_two>(1, 21).get(); });
  EXPECT_EQ(result, 42);
  EXPECT_EQ(rt.percolation_mgr().stats().tasks_percolated, 1u);
}

TEST(Percolation, StagingSlotsApplyBackpressure) {
  runtime_params p = quick_params(2, 2);
  p.staging_slots_per_locality = 4;
  runtime rt(p);
  rt.start();
  g_perc_running.store(0);
  g_perc_peak.store(0);
  rt.run([&] {
    std::vector<lco::future<void>> futs;
    for (int i = 0; i < 64; ++i) {
      futs.push_back(core::percolate<&slow_task>(1, i));
    }
    for (auto& f : futs) f.wait();
  });
  // Never more tasks resident at the target than staging slots.
  EXPECT_LE(g_perc_peak.load(), 4);
  EXPECT_GT(rt.percolation_mgr().stats().slot_waits, 0u);
}

TEST(Percolation, SlotsRecycleAcrossBatches) {
  runtime_params p = quick_params(2);
  p.staging_slots_per_locality = 2;
  runtime rt(p);
  rt.start();
  for (int round = 0; round < 3; ++round) {
    int total = 0;
    rt.run([&] {
      auto a = core::percolate<&times_two>(1, 1);
      auto b = core::percolate<&times_two>(1, 2);
      auto c = core::percolate<&times_two>(1, 3);
      total = a.get() + b.get() + c.get();
    });
    EXPECT_EQ(total, 12);
  }
}

}  // namespace
