// Tests: the LITL-X API — async calls with sync slots, dataflow variables,
// percolation directives, and location-consistent atomic sections.
#include <gtest/gtest.h>

#include <atomic>

#include "litlx/litlx.hpp"

namespace {

using namespace px;
using core::runtime;
using core::runtime_params;

runtime_params quick_params(std::size_t localities, unsigned workers = 2) {
  runtime_params p;
  p.localities = localities;
  p.workers_per_locality = workers;
  return p;
}

int square(int x) { return x * x; }
PX_REGISTER_ACTION(square)

void touch(int) {}
PX_REGISTER_ACTION(touch)

// Atomic-section bodies (typed actions since PR 6: sections are parcels,
// so the bodies are registered free functions, not closures).
void inc_counter(std::int64_t& v) { v += 1; }
PX_REGISTER_ATOMIC_SECTION(std::int64_t, inc_counter)

std::int64_t read_counter(std::int64_t& v) { return v; }
PX_REGISTER_ATOMIC_SECTION(std::int64_t, read_counter)

std::uint64_t append_bc(std::string& s) {
  s += "bc";
  return s.size();
}
PX_REGISTER_ATOMIC_SECTION(std::string, append_bc)

void set_int(int& v, int to) { v = to; }
PX_REGISTER_ATOMIC_SECTION(int, set_int)

int read_int(int& v) { return v; }
PX_REGISTER_ATOMIC_SECTION(int, read_int)

TEST(Litlx, AsyncCallSignalsSlot) {
  runtime rt(quick_params(3));
  rt.start();
  rt.run([&] {
    litlx::sync_slot slot(3);
    for (int i = 0; i < 3; ++i) {
      litlx::async_call<&touch>(slot, static_cast<gas::locality_id>(i), i);
    }
    slot.wait();  // EARTH-style join
    SUCCEED();
  });
}

TEST(Litlx, AsyncCallIntoDeliversValueBeforeSignal) {
  runtime rt(quick_params(2));
  rt.start();
  rt.run([&] {
    litlx::sync_slot slot(2);
    int a = 0, b = 0;
    litlx::async_call_into<&square>(slot, a, 1, 6);
    litlx::async_call_into<&square>(slot, b, 1, 7);
    slot.wait();
    EXPECT_EQ(a + b, 36 + 49);
  });
}

TEST(Litlx, SpawnThreadRunsLocally) {
  runtime rt(quick_params(2));
  std::atomic<int> hits{0};
  rt.run([&] {
    litlx::spawn_thread([&] { hits.fetch_add(1); });
  });
  EXPECT_EQ(hits.load(), 1);
}

TEST(Litlx, DataflowVarSingleAssignment) {
  runtime rt(quick_params(2));
  rt.start();
  litlx::dataflow_var<int> dv;
  std::atomic<int> consumer_sum{0};
  rt.run([&] {
    litlx::sync_slot slot(3);
    for (int i = 0; i < 3; ++i) {
      litlx::spawn_thread([&] {
        consumer_sum.fetch_add(dv.read());  // blocks until written
        slot.signal();
      });
    }
    litlx::spawn_thread([&] { dv.write(5); });
    slot.wait();
  });
  EXPECT_EQ(consumer_sum.load(), 15);
  EXPECT_TRUE(dv.written());
}

TEST(Litlx, PercolateDelegatesToCore) {
  runtime rt(quick_params(2));
  rt.start();
  int out = 0;
  rt.run([&] { out = litlx::percolate<&square>(1, 9).get(); });
  EXPECT_EQ(out, 81);
}

TEST(Litlx, AtomicSectionsSerializePerObject) {
  runtime rt(quick_params(3, 2));
  rt.start();
  litlx::atomic_object<std::int64_t> counter(rt, 1, 0);
  constexpr int kThreads = 12;
  constexpr int kIncrements = 50;
  rt.run([&] {
    litlx::sync_slot slot(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      const auto where = static_cast<gas::locality_id>(t % 3);
      rt.at(where).spawn([&] {
        for (int k = 0; k < kIncrements; ++k) {
          // Unsynchronized read-modify-write made safe by the section.
          counter.atomically<&inc_counter>().wait();
        }
        slot.signal();
      });
    }
    slot.wait();
    const auto total = counter.atomically<&read_counter>().get();
    EXPECT_EQ(total, kThreads * kIncrements);
  });
}

TEST(Litlx, AtomicSectionReturnsValue) {
  runtime rt(quick_params(2));
  rt.start();
  litlx::atomic_object<std::string> obj(rt, 1, "a");
  rt.run([&] {
    auto len = obj.atomically<&append_bc>();
    EXPECT_EQ(len.get(), 3u);
  });
}

TEST(Litlx, AtomicSectionsOnDifferentObjectsProceedIndependently) {
  runtime rt(quick_params(2, 2));
  rt.start();
  litlx::atomic_object<int> a(rt, 0, 0);
  litlx::atomic_object<int> b(rt, 1, 0);
  rt.run([&] {
    // No ordering is required (location consistency); both must complete.
    auto fa = a.atomically<&set_int>(1);
    auto fb = b.atomically<&set_int>(2);
    fa.wait();
    fb.wait();
    EXPECT_EQ(a.atomically<&read_int>().get(), 1);
    EXPECT_EQ(b.atomically<&read_int>().get(), 2);
  });
}

}  // namespace
