// Tests: Gilgamesh II design-point arithmetic, the two-modality chip model,
// and the interconnect models.
#include <gtest/gtest.h>

#include "gilgamesh/machine.hpp"
#include "gilgamesh/tech.hpp"
#include "gilgamesh/vortex.hpp"

namespace {

using namespace px::gilgamesh;

// ----------------------------------------------------------- design point

TEST(DesignPoint, ReproducesPaperChipComposition) {
  const design_point dp;
  // "16 PIM modules, each with 32 MIND nodes"
  EXPECT_EQ(dp.tech.pim_modules_per_chip, 16u);
  EXPECT_EQ(dp.tech.mind_nodes_per_pim, 32u);
  EXPECT_EQ(dp.mind_nodes_per_chip, 512u);
}

TEST(DesignPoint, ChipDeliversApproximatelyTenTeraflops) {
  const design_point dp;
  EXPECT_GE(dp.chip_sustained_tflops, 9.0);
  EXPECT_LE(dp.chip_sustained_tflops, 11.0);
  // "theoretical peak is substantially higher"
  EXPECT_GT(dp.chip_peak_tflops, 1.5 * dp.chip_sustained_tflops);
}

TEST(DesignPoint, SystemExceedsOneExaflopsWith100kChips) {
  const design_point dp;
  EXPECT_EQ(dp.tech.compute_chips, 100'000u);
  EXPECT_GT(dp.system_peak_pflops, 1000.0);  // > 1 EF
}

TEST(DesignPoint, TotalMemoryIsFourPetabytes) {
  const design_point dp;
  EXPECT_EQ(dp.tech.penultimate_chips, 100'000u);
  EXPECT_NEAR(dp.total_memory_pbytes, 4.0, 0.25);
  EXPECT_GT(dp.penultimate_pbytes, dp.pim_memory_pbytes);
}

TEST(DesignPoint, ArithmeticConsistency) {
  technology_params t;
  t.compute_chips = 10;
  const design_point dp(t);
  EXPECT_NEAR(dp.system_sustained_pflops,
              dp.chip_sustained_tflops * 10 / 1e3, 1e-12);
  EXPECT_NEAR(dp.chip_sustained_tflops,
              dp.mind_tflops_per_chip + dp.dataflow_tflops_per_chip, 1e-12);
}

TEST(DesignPoint, TablesRender) {
  const design_point dp;
  const auto table = design_point_table(dp);
  EXPECT_GE(table.rows(), 10u);
  const auto comp = chip_composition_table(dp);
  EXPECT_GE(comp.rows(), 3u);
  EXPECT_NE(table.render().find("total memory"), std::string::npos);
}

// ------------------------------------------------------------- chip model

TEST(ChipModel, HighLocalityFavorsDataflowAccelerator) {
  chip_model chip;
  const auto tasks = make_locality_workload(400, 0.95, 50'000, 16'384, 1);
  const auto accel = chip.run(tasks, placement_policy::accel_only);
  const auto mind = chip.run(tasks, placement_policy::mind_only);
  EXPECT_LT(accel.makespan_ns, mind.makespan_ns);
}

TEST(ChipModel, LowLocalityFavorsMind) {
  chip_model chip;
  // Memory-intensive tasks with no reuse starve the staging channel.
  const auto tasks = make_locality_workload(400, 0.02, 5'000, 65'536, 2);
  const auto accel = chip.run(tasks, placement_policy::accel_only);
  const auto mind = chip.run(tasks, placement_policy::mind_only);
  EXPECT_LT(mind.makespan_ns, accel.makespan_ns);
}

TEST(ChipModel, AdaptiveBeatsBothExtremesOnBimodalWorkload) {
  // Figure 1's design argument: a workload mixing streaming (high reuse)
  // and irregular (no reuse) phases wants *both* structures — routing each
  // task to its natural unit beats committing to either alone.
  chip_model chip;
  auto tasks = make_locality_workload(300, 0.95, 50'000, 16'384, 3);
  const auto irregular = make_locality_workload(300, 0.03, 5'000, 65'536, 4);
  tasks.insert(tasks.end(), irregular.begin(), irregular.end());

  const auto accel = chip.run(tasks, placement_policy::accel_only);
  const auto mind = chip.run(tasks, placement_policy::mind_only);
  const auto adaptive = chip.run(tasks, placement_policy::adaptive, 0.5);
  EXPECT_LT(adaptive.makespan_ns, accel.makespan_ns);
  EXPECT_LT(adaptive.makespan_ns, mind.makespan_ns);
  EXPECT_GT(adaptive.tasks_on_accel, 0u);
  EXPECT_GT(adaptive.tasks_on_mind, 0u);
}

TEST(ChipModel, DeterministicForFixedSeed) {
  chip_model chip;
  const auto tasks = make_locality_workload(100, 0.5, 10'000, 8'192, 7);
  const auto r1 = chip.run(tasks, placement_policy::adaptive);
  const auto r2 = chip.run(tasks, placement_policy::adaptive);
  EXPECT_EQ(r1.makespan_ns, r2.makespan_ns);
  EXPECT_EQ(r1.tasks_on_accel, r2.tasks_on_accel);
}

TEST(ChipModel, UtilizationIsBounded) {
  chip_model chip;
  const auto tasks = make_locality_workload(200, 0.7, 30'000, 16'384, 9);
  const auto res = chip.run(tasks, placement_policy::adaptive);
  EXPECT_GE(res.accel_utilization, 0.0);
  EXPECT_LE(res.accel_utilization, 1.0 + 1e-9);
  EXPECT_GE(res.mind_utilization, 0.0);
  EXPECT_LE(res.mind_utilization, 1.0 + 1e-9);
  EXPECT_GT(res.throughput_gflops, 0.0);
}

// ---------------------------------------------------------------- network

TEST(NetworkModel, VortexDiameterIsLogarithmic) {
  network_params np;
  np.nodes = 256;
  np.topology = px::net::topology_kind::vortex;
  network_model nm(np);
  traffic_params t;
  t.load = 0.1;
  t.messages_per_node = 50;
  const auto res = nm.run(t);
  // log2(256)=8 levels + ejection = 9 expected hops.
  EXPECT_NEAR(res.mean_hops, 9.0, 0.5);
}

TEST(NetworkModel, MeshLatencyExceedsVortexAtScale) {
  traffic_params t;
  t.load = 0.3;
  t.messages_per_node = 100;

  network_params vortex;
  vortex.nodes = 256;
  vortex.topology = px::net::topology_kind::vortex;
  network_params mesh = vortex;
  mesh.topology = px::net::topology_kind::mesh2d;

  const auto rv = network_model(vortex).run(t);
  const auto rm = network_model(mesh).run(t);
  EXPECT_LT(rv.mean_latency_ns, rm.mean_latency_ns);
}

TEST(NetworkModel, LatencyRisesWithLoad) {
  network_params np;
  np.nodes = 64;
  np.topology = px::net::topology_kind::vortex;
  network_model nm(np);
  traffic_params lo, hi;
  lo.load = 0.1;
  hi.load = 0.9;
  lo.messages_per_node = hi.messages_per_node = 150;
  const auto rl = nm.run(lo);
  const auto rh = nm.run(hi);
  EXPECT_GE(rh.mean_latency_ns, rl.mean_latency_ns);
}

TEST(NetworkModel, HotspotDegradesEjection) {
  network_params np;
  np.nodes = 64;
  np.topology = px::net::topology_kind::crossbar;
  network_model nm(np);
  traffic_params uniform, hotspot;
  uniform.load = hotspot.load = 0.5;
  uniform.messages_per_node = hotspot.messages_per_node = 100;
  hotspot.hotspot_fraction = 0.5;
  const auto ru = nm.run(uniform);
  const auto rh = nm.run(hotspot);
  EXPECT_GT(rh.p99_latency_ns, ru.p99_latency_ns);
}

TEST(NetworkModel, AllMessagesDelivered) {
  network_params np;
  np.nodes = 32;
  np.topology = px::net::topology_kind::mesh2d;
  network_model nm(np);
  traffic_params t;
  t.load = 0.4;
  t.messages_per_node = 80;
  const auto res = nm.run(t);
  EXPECT_EQ(res.messages, 32u * 80u);
  EXPECT_GT(res.delivered_gbytes_per_s, 0.0);
}

}  // namespace
