// Cross-module integration: the whole stack under adversarial conditions —
// fabric jitter (message reordering), mixed mechanism composition, and
// result equivalence between the ParalleX runtime and the CSP baseline.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "baseline/csp.hpp"
#include "core/action.hpp"
#include "core/echo.hpp"
#include "core/process.hpp"
#include "core/runtime.hpp"
#include "litlx/litlx.hpp"

namespace {

using namespace px;
using core::runtime;
using core::runtime_params;

std::uint64_t tri_fib(std::uint64_t n) {
  if (n < 2) return n;
  runtime& rt = core::this_locality()->rt();
  const auto target = static_cast<gas::locality_id>(
      (n * 2654435761u) % rt.num_localities());
  auto left = core::async<&tri_fib>(rt.locality_gid(target), n - 1);
  return tri_fib(n - 2) + left.get();
}
PX_REGISTER_ACTION(tri_fib)

double block_sum(std::vector<double> xs) {
  return std::accumulate(xs.begin(), xs.end(), 0.0);
}
PX_REGISTER_ACTION(block_sum)

// --------------------------------------------------- jitter (reordering)

TEST(Integration, FibUnderHeavyJitterIsCorrect) {
  // Jitter larger than base latency reorders parcels aggressively; the
  // model must be insensitive to delivery order.
  runtime_params p;
  p.localities = 3;
  p.workers_per_locality = 2;
  p.fabric.base_latency_ns = 1'000;
  p.fabric.jitter_ns = 50'000;
  runtime rt(p);
  std::uint64_t result = 0;
  rt.run([&] {
    result = core::async<&tri_fib>(rt.locality_gid(1), 14).get();
  });
  EXPECT_EQ(result, 377u);
}

TEST(Integration, ScatterGatherUnderJitterLosesNothing) {
  runtime_params p;
  p.localities = 4;
  p.workers_per_locality = 2;
  p.fabric.jitter_ns = 20'000;
  runtime rt(p);
  double total = 0;
  rt.run([&] {
    std::vector<lco::future<double>> parts;
    for (int i = 0; i < 64; ++i) {
      std::vector<double> block(100, static_cast<double>(i));
      parts.push_back(core::async<&block_sum>(
          rt.locality_gid(static_cast<gas::locality_id>(i % 4)),
          std::move(block)));
    }
    for (auto& f : parts) total += f.get();
  });
  // sum over i of 100*i for i in [0,64)
  EXPECT_DOUBLE_EQ(total, 100.0 * (63.0 * 64.0 / 2.0));
}

// ------------------------------------------- px vs csp result equivalence

TEST(Integration, ParallexAndCspComputeTheSameReduction) {
  constexpr int kN = 1000;
  // ParalleX: distributed block sums + dataflow gather.
  double px_total = 0;
  {
    runtime rt(runtime_params{.localities = 4, .workers_per_locality = 2});
    rt.run([&] {
      std::vector<lco::future<double>> parts;
      for (int b = 0; b < 4; ++b) {
        std::vector<double> block;
        for (int i = b; i < kN; i += 4) block.push_back(i);
        parts.push_back(core::async<&block_sum>(
            rt.locality_gid(static_cast<gas::locality_id>(b)),
            std::move(block)));
      }
      for (auto& f : parts) px_total += f.get();
    });
  }
  // CSP: allreduce over the same partition.
  std::atomic<double> csp_total{0};
  {
    baseline::csp_runtime rt(baseline::csp_params{.ranks = 4});
    rt.run([&](baseline::rank_context& ctx) {
      double mine = 0;
      for (int i = ctx.rank(); i < kN; i += ctx.size()) mine += i;
      const double total = ctx.allreduce_sum(mine);
      if (ctx.rank() == 0) csp_total.store(total);
    });
  }
  EXPECT_DOUBLE_EQ(px_total, csp_total.load());
  EXPECT_DOUBLE_EQ(px_total, kN * (kN - 1) / 2.0);
}

// ------------------------------------------------- composition scenarios

TEST(Integration, ProcessSpanningWorkUpdatesEchoVariable) {
  runtime rt(runtime_params{.localities = 3, .workers_per_locality = 2});
  rt.start();
  core::echo<int> progress(rt, 0, 0);
  auto proc = core::create_process(rt, {0, 1, 2});

  rt.run([&] {
    for (int i = 0; i < 9; ++i) {
      proc->spawn_any([&] {
        progress.update([](int x) { return x + 1; });
      });
    }
    proc->seal();
    proc->terminated().wait();
    auto [bytes, version] = rt.echo_mgr().home_read(progress.id());
    EXPECT_EQ(util::from_bytes<int>(bytes), 9);
    EXPECT_EQ(version, 10u);  // 9 committed updates after initial v1
  });
}

TEST(Integration, NameServiceDrivenDispatch) {
  runtime rt(runtime_params{.localities = 4, .workers_per_locality = 1});
  rt.start();
  // Register an application-level alias for a compute locality, then
  // dispatch through the symbolic name only.
  ASSERT_TRUE(rt.names().register_name("app/solver/primary",
                                       rt.locality_gid(2)));
  double result = 0;
  rt.run([&] {
    const auto target = rt.names().lookup("app/solver/primary");
    ASSERT_TRUE(target.has_value());
    result = core::async<&block_sum>(*target,
                                     std::vector<double>{1, 2, 3, 4}).get();
  });
  EXPECT_DOUBLE_EQ(result, 10.0);
  auto solver_entries = rt.names().list("app/solver");
  EXPECT_EQ(solver_entries.size(), 1u);
}

TEST(Integration, LitlxSlotsComposeWithPercolationAndEcho) {
  runtime_params p;
  p.localities = 2;
  p.workers_per_locality = 2;
  p.staging_slots_per_locality = 2;
  runtime rt(p);
  rt.start();
  core::echo<double> acc(rt, 0, 0.0);
  rt.run([&] {
    litlx::sync_slot slot(6);
    for (int i = 0; i < 6; ++i) {
      litlx::spawn_thread([&, i] {
        auto fut = litlx::percolate<&block_sum>(
            1, std::vector<double>(10, static_cast<double>(i)));
        const double part = fut.get();
        acc.update([part](double t) { return t + part; });
        slot.signal();
      });
    }
    slot.wait();
    auto [value, version] = acc.read();
    (void)version;
    EXPECT_DOUBLE_EQ(value, 10.0 * (0 + 1 + 2 + 3 + 4 + 5));
  });
}

TEST(Integration, RepeatedRuntimeLifecyclesAreClean) {
  for (int round = 0; round < 5; ++round) {
    runtime rt(runtime_params{.localities = 2, .workers_per_locality = 1});
    std::atomic<int> hits{0};
    rt.run([&] {
      for (int i = 0; i < 20; ++i) {
        core::apply<&tri_fib>(rt.locality_gid(1), 3);
        hits.fetch_add(1);
      }
    });
    EXPECT_EQ(hits.load(), 20);
    rt.stop();
  }
}

TEST(Integration, QuiescenceCoversParcelChains) {
  // apply chains that bounce between localities several times; run() must
  // not return until the last hop lands.
  runtime rt(runtime_params{.localities = 2, .workers_per_locality = 2});
  std::uint64_t result = 0;
  rt.run([&] {
    result = core::async<&tri_fib>(rt.locality_gid(0), 12).get();
  });
  EXPECT_EQ(result, 144u);
  // After run(): nothing in flight anywhere.
  EXPECT_EQ(rt.fabric().in_flight(), 0u);
  for (std::size_t l = 0; l < rt.num_localities(); ++l) {
    EXPECT_EQ(rt.at(static_cast<gas::locality_id>(l)).sched().live_threads(),
              0u);
  }
}

}  // namespace
