// Introspection + adaptive rebalancing: counter registry (gid-addressable,
// path-named), cross-locality query_counter round trips, the per-locality
// load monitor, and the rebalancer's two actuators (hot-object migration,
// spawn_any placement steering).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "core/action.hpp"
#include "core/process.hpp"
#include "core/runtime.hpp"
#include "introspect/monitor.hpp"
#include "introspect/query.hpp"
#include "threads/scheduler.hpp"

namespace {

using namespace px;
using namespace std::chrono_literals;

void spin_us(double us) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double, std::micro>(us);
  while (std::chrono::steady_clock::now() < deadline) {
  }
}

std::atomic<int> g_bumps{0};
void bump_counter() { g_bumps.fetch_add(1); }
PX_REGISTER_ACTION(bump_counter)

// Polls `cond` for up to two seconds; the runtime gets no magic clocks.
template <typename F>
bool eventually(F&& cond) {
  const auto deadline = std::chrono::steady_clock::now() + 2s;
  while (std::chrono::steady_clock::now() < deadline) {
    if (cond()) return true;
    std::this_thread::sleep_for(1ms);
  }
  return cond();
}

// ---------------------------------------------------------------- registry

TEST(Introspect, CountersAreGidAddressableAndPathNamed) {
  core::runtime_params p;
  p.localities = 2;
  p.workers_per_locality = 1;
  core::runtime rt(p);

  const auto id = rt.introspection().find("runtime/loc0/sched/spawned");
  ASSERT_TRUE(id.has_value());
  EXPECT_EQ(id->kind(), gas::gid_kind::hardware);
  EXPECT_EQ(id->home(), 0u);
  // Bound in the AGAS directory like any first-class object.
  EXPECT_EQ(rt.gas().resolve_authoritative(1, *id).value(), 0u);

  // A counter names a *live* value, not a snapshot taken at registration.
  const std::uint64_t before =
      rt.introspection().read("runtime/loc0/sched/spawned").value();
  rt.run([] {
    for (int i = 0; i < 5; ++i) {
      core::this_locality()->spawn([] {});
    }
  });
  const std::uint64_t after =
      rt.introspection().read("runtime/loc0/sched/spawned").value();
  EXPECT_GE(after, before + 6);  // root + 5 children
  rt.stop();
}

TEST(Introspect, ListEnumeratesCounterSubtrees) {
  core::runtime_params p;
  p.localities = 2;
  p.workers_per_locality = 1;
  core::runtime rt(p);

  // Per-locality subtree: scheduler, parcels, port, fabric, monitor.
  const auto loc1 = rt.introspection().list("runtime/loc1");
  EXPECT_GE(loc1.size(), 15u);
  for (const auto& c : loc1) {
    EXPECT_EQ(c.id.home(), 1u) << c.path;
    EXPECT_TRUE(rt.introspection().read(c.id).has_value()) << c.path;
  }
  // Global services.
  EXPECT_EQ(rt.introspection().list("runtime/agas").size(), 7u);
  EXPECT_EQ(rt.introspection().list("runtime/lco").size(), 3u);
  EXPECT_GE(rt.introspection().list("runtime/rebalance").size(), 5u);
  // The locality hardware gids are *not* counters.
  EXPECT_FALSE(rt.introspection().read("hw/locality/0").has_value());
  rt.stop();
}

TEST(Introspect, PerLocalityNetCountersExist) {
  core::runtime_params p;
  p.localities = 2;
  p.workers_per_locality = 1;
  core::runtime rt(p);
  rt.run([&] {
    for (int i = 0; i < 8; ++i) core::apply<&bump_counter>(rt.locality_gid(1));
  });
  // The wire totals are registered per locality and reflect transport
  // traffic (under the sim backend, the fabric's books).
  EXPECT_EQ(rt.introspection().list("runtime/loc0/net").size(), 4u);
  EXPECT_GT(rt.introspection().read("runtime/loc0/net/bytes_tx").value(), 0u);
  EXPECT_GT(rt.introspection().read("runtime/loc1/net/bytes_rx").value(), 0u);
  EXPECT_GT(rt.introspection().read("runtime/loc0/net/msgs_tx").value(), 0u);
  // Backend-specific rows (tcp reconnects, shm ring_full_waits/wakeups)
  // register only under their backend — sim carries none of them.
  EXPECT_FALSE(
      rt.introspection().read("runtime/loc0/net/reconnects").has_value());
  rt.stop();
}

TEST(Introspect, RemoteCountersNameButDoNotSampleLocally) {
  core::runtime_params p;
  p.localities = 2;
  p.workers_per_locality = 1;
  core::runtime rt(p);
  // A sampler-less (remote-homed) counter is findable and listable — its
  // gid allocation is the point — but read() refuses locally instead of
  // inventing a number for another process's books.
  const gas::gid id =
      rt.introspection().add_remote(1, "test/remote/only_named");
  EXPECT_TRUE(id.valid());
  EXPECT_EQ(id.home(), 1u);
  ASSERT_TRUE(rt.introspection().find("test/remote/only_named").has_value());
  EXPECT_EQ(*rt.introspection().find("test/remote/only_named"), id);
  EXPECT_FALSE(rt.introspection().read(id).has_value());
  EXPECT_FALSE(rt.introspection().read("test/remote/only_named").has_value());
  rt.stop();
}

// ------------------------------------------------------------ query action

TEST(Introspect, QueryCounterCrossLocalityReturnsLiveValue) {
  core::runtime_params p;
  p.localities = 3;
  p.workers_per_locality = 1;
  core::runtime rt(p);
  rt.start();

  // Make locality 2 do real work, then interrogate it from locality 0
  // with a plain parcel round trip.
  constexpr int kThreads = 32;
  for (int i = 0; i < kThreads; ++i) {
    rt.at(2).spawn([] {});
  }
  rt.wait_quiescent();

  std::atomic<std::uint64_t> by_path{0}, by_gid{0};
  const gas::gid counter =
      rt.introspection().find("runtime/loc2/sched/spawned").value();
  rt.run([&] {
    auto fut = introspect::query_counter(*core::this_locality(),
                                         "runtime/loc2/sched/spawned");
    ASSERT_TRUE(fut.has_value());
    by_path.store(fut->get());
    by_gid.store(
        introspect::query_counter(*core::this_locality(), counter).get());
  });
  // Live: at least the K explicit spawns (the query action itself spawns
  // at locality 2, so the second read can only be larger).
  EXPECT_GE(by_path.load(), static_cast<std::uint64_t>(kThreads));
  EXPECT_GE(by_gid.load(), by_path.load());

  // A hardware gid that is not a counter answers with the sentinel
  // instead of wedging the asker.
  std::atomic<std::uint64_t> missing{0};
  rt.run([&] {
    missing.store(introspect::query_counter(*core::this_locality(),
                                            rt.locality_gid(1))
                      .get());
  });
  EXPECT_EQ(missing.load(), introspect::no_such_counter);

  // Unknown paths fail locally, before any parcel is spent.
  rt.run([&] {
    EXPECT_FALSE(introspect::query_counter(*core::this_locality(),
                                           "runtime/loc9/nope")
                     .has_value());
  });
  rt.stop();
}

// ----------------------------------------------------------------- monitor

TEST(Introspect, MonitorSamplesReadyDepthAndDecays) {
  threads::scheduler sched(threads::scheduler_params{.workers = 1});
  introspect::monitor mon(sched,
                          introspect::monitor_params{
                              .sample_interval_us = 0, .alpha = 0.5});
  sched.start();

  std::atomic<bool> release{false};
  constexpr int kSpinners = 9;
  for (int i = 0; i < kSpinners; ++i) {
    sched.spawn([&release] {
      while (!release.load(std::memory_order_acquire)) {
        threads::scheduler::yield();
      }
    });
  }
  // One spinner occupies the worker; the rest sit ready.
  ASSERT_TRUE(eventually(
      [&] { return sched.ready_estimate() >= kSpinners - 1; }));
  mon.tick();
  EXPECT_GE(mon.samples_taken(), 1u);
  EXPECT_GT(mon.ready_ewma(), 0.0);

  release.store(true, std::memory_order_release);
  sched.wait_quiescent();
  EXPECT_EQ(mon.ready_now(), 0u);
  const double loaded = mon.ready_ewma();
  for (int i = 0; i < 24; ++i) mon.tick();
  EXPECT_LT(mon.ready_ewma(), loaded);
  EXPECT_LT(mon.ready_ewma(), 0.1);  // decayed to idle
  sched.stop();
}

// -------------------------------------------------------------- rebalancer

std::atomic<std::uint64_t> hops_done{0};

// A self-chaining hot-spot: each hop does a slice of compute at the
// object's *current* owner, then re-sends to the same gid — so after a
// migration the chain follows the object (message-driven work moves to
// the data).
void chain_hop(std::uint64_t gid_bits, std::uint32_t remaining) {
  spin_us(10.0);
  hops_done.fetch_add(1, std::memory_order_relaxed);
  if (remaining > 0) {
    core::apply<&chain_hop>(gas::gid::from_bits(gid_bits), gid_bits,
                            remaining - 1);
  }
}
PX_REGISTER_ACTION(chain_hop)

TEST(Rebalancer, MigratesHotObjectsAwayFromOverloadedLocality) {
  core::runtime_params p;
  p.localities = 2;
  p.workers_per_locality = 1;
  p.rebalance = 1;
  p.rebalance_threshold = 1.2;
  p.rebalance_min_depth = 2;
  p.rebalance_max_migrations = 4;
  p.rebalance_interval_us = 50;
  core::runtime rt(p);

  constexpr int kObjects = 8;
  constexpr std::uint32_t kHops = 100;
  std::vector<gas::gid> objs;
  for (int i = 0; i < kObjects; ++i) {
    objs.push_back(rt.new_object<int>(0, i));  // all homed+bound at loc 0
  }

  hops_done.store(0);
  rt.run([&] {
    for (const auto id : objs) {
      core::apply<&chain_hop>(id, id.bits(), kHops - 1);
    }
  });

  // Work conserved across every migration and forward.
  EXPECT_EQ(hops_done.load(), static_cast<std::uint64_t>(kObjects) * kHops);

  const auto st = rt.balancer().stats();
  EXPECT_GT(st.rounds, 0u);
  EXPECT_GT(st.triggers, 0u);
  EXPECT_GE(st.objects_migrated, 1u);
  EXPECT_GE(rt.gas().stats().migrations, 1u);
  // The skew physically moved: some hot objects now live at locality 1.
  EXPECT_GE(rt.at(1).object_count(), 1u);
  // And the counters advertise it machine-wide.
  EXPECT_EQ(rt.introspection().read("runtime/rebalance/migrations").value(),
            st.objects_migrated);
  rt.stop();
}

TEST(Rebalancer, SpawnAnySteersTowardShallowQueues) {
  core::runtime_params p;
  p.localities = 2;
  p.workers_per_locality = 1;
  p.rebalance = 1;
  // Keep the migration actuator out of the way: placement steering is
  // unconditional while the rebalancer is enabled.
  p.rebalance_min_depth = 1000000;
  core::runtime rt(p);
  rt.start();

  // The clog must stay deeper than the whole task batch: placement reads
  // instantaneous depths, and tasks parked at locality 1 count against it
  // until its worker drains them.
  std::atomic<bool> release{false};
  constexpr int kClog = 24;
  for (int i = 0; i < kClog; ++i) {
    rt.at(0).spawn([&release] {
      while (!release.load(std::memory_order_acquire)) {
        threads::scheduler::yield();
      }
    });
  }
  ASSERT_TRUE(eventually(
      [&] { return rt.at(0).sched().ready_estimate() >= kClog - 1; }));

  auto proc = core::create_process(rt, {0, 1});
  std::atomic<int> ran_at_1{0};
  constexpr int kTasks = 12;
  for (int i = 0; i < kTasks; ++i) {
    proc->spawn_any([&ran_at_1] {
      if (core::this_locality()->id() == 1) {
        ran_at_1.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  proc->seal();
  release.store(true, std::memory_order_release);
  proc->terminated().wait();
  rt.wait_quiescent();

  // Static round-robin would put exactly half at locality 1; steering
  // sends the whole batch away from the clogged locality (its queue is
  // always strictly deeper than locality 1 can transiently get).
  EXPECT_GE(ran_at_1.load(), kTasks - 1);
  EXPECT_GT(rt.balancer().stats().placement_redirects, 0u);
  rt.stop();
}

TEST(Rebalancer, DisabledKeepsRoundRobinAndMigratesNothing) {
  core::runtime_params p;
  p.localities = 2;
  p.workers_per_locality = 1;
  p.rebalance = 0;
  core::runtime rt(p);
  rt.start();

  auto proc = core::create_process(rt, {0, 1});
  std::atomic<int> ran_at_1{0};
  constexpr int kTasks = 10;
  for (int i = 0; i < kTasks; ++i) {
    proc->spawn_any([&ran_at_1] {
      if (core::this_locality()->id() == 1) {
        ran_at_1.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  proc->seal();
  proc->terminated().wait();
  rt.wait_quiescent();

  EXPECT_EQ(ran_at_1.load(), kTasks / 2);  // exact round-robin split
  const auto st = rt.balancer().stats();
  EXPECT_EQ(st.placement_redirects, 0u);
  EXPECT_EQ(st.objects_migrated, 0u);
  rt.stop();
}

}  // namespace
