// The pattern library (src/patterns): pipelines, map_reduce, task_pool —
// correctness, backpressure, nesting, termination tracking, and the
// runtime/patterns/* introspection surface.  Single-process shape; the
// cross-process behavior of the same patterns is covered by
// tests/test_distributed.cpp.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/runtime.hpp"
#include "patterns/patterns.hpp"

namespace {

using namespace px;

core::runtime_params make_params() {
  core::runtime_params p;
  p.localities = 4;
  p.workers_per_locality = 2;
  return p;
}

std::vector<gas::locality_id> full_span(core::runtime& rt) {
  std::vector<gas::locality_id> span;
  for (std::size_t i = 0; i < rt.num_localities(); ++i) {
    span.push_back(static_cast<gas::locality_id>(i));
  }
  return span;
}

// ---------------------------------------------------------------- pipeline

std::atomic<std::uint64_t> g_sink_sum{0};
std::atomic<std::uint64_t> g_sink_count{0};

std::uint64_t double_it(std::uint64_t x) { return x * 2; }
void record_it(std::uint64_t x) {
  g_sink_sum.fetch_add(x);
  g_sink_count.fetch_add(1);
}

TEST(Patterns, PipelineRunsEveryItemThroughEveryStage) {
  core::runtime rt(make_params());
  g_sink_sum = 0;
  g_sink_count = 0;
  rt.run([&] {
    patterns::pipeline<&double_it, &record_it> pipe(rt, full_span(rt), 8);
    std::uint64_t expect = 0;
    for (std::uint64_t i = 1; i <= 20; ++i) {
      pipe.push(i);
      expect += 2 * i;
    }
    pipe.close();  // termination: every item has left every stage
    EXPECT_EQ(g_sink_count.load(), 20u);
    EXPECT_EQ(g_sink_sum.load(), expect);
  });
  rt.stop();
}

std::atomic<int> g_inflight{0};
std::atomic<int> g_max_inflight{0};

std::uint64_t enter_slow(std::uint64_t x) {
  const int cur = g_inflight.fetch_add(1) + 1;
  int prev = g_max_inflight.load();
  while (cur > prev && !g_max_inflight.compare_exchange_weak(prev, cur)) {
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  return x;
}
void leave_slow(std::uint64_t) { g_inflight.fetch_sub(1); }

TEST(Patterns, PipelineWindowBoundsItemsInFlight) {
  core::runtime rt(make_params());
  g_inflight = 0;
  g_max_inflight = 0;
  rt.run([&] {
    // Window 3: the 4th push must suspend until an item_done parcel
    // refills a slot, so at most 3 items are ever between the stages.
    patterns::pipeline<&enter_slow, &leave_slow> pipe(rt, full_span(rt), 3);
    for (std::uint64_t i = 0; i < 12; ++i) pipe.push(i);
    pipe.close();
  });
  EXPECT_LE(g_max_inflight.load(), 3);
  EXPECT_GE(g_max_inflight.load(), 1);
  rt.stop();
}

// -------------------------------------------------------------- map_reduce

std::uint64_t iota_sum(std::uint64_t ctx, std::uint64_t begin,
                       std::uint64_t end) {
  std::uint64_t s = 0;
  for (std::uint64_t i = begin; i < end; ++i) s += ctx + i;
  return s;
}
std::uint64_t add_u64(std::uint64_t a, std::uint64_t b) { return a + b; }

TEST(Patterns, MapReduceReducesEveryChunk) {
  core::runtime rt(make_params());
  const auto tasks_before =
      patterns::pattern_counters::map_tasks.load();
  rt.run([&] {
    // n=100, chunk=7 -> 15 chunks, sum(0..99) = 4950.
    const std::uint64_t sum = patterns::map_reduce<&iota_sum, &add_u64>(
        rt, full_span(rt), 100, 7);
    EXPECT_EQ(sum, 4950u);
  });
  EXPECT_EQ(patterns::pattern_counters::map_tasks.load() - tasks_before,
            15u);
  rt.stop();
}

TEST(Patterns, MapReduceEmptyRangeReturnsDefault) {
  core::runtime rt(make_params());
  rt.run([&] {
    EXPECT_EQ((patterns::map_reduce<&iota_sum, &add_u64>(rt, full_span(rt),
                                                         0, 4)),
              0u);
  });
  rt.stop();
}

// --------------------------------------------------------------- task_pool

std::atomic<std::uint64_t> g_pool_sum{0};
void pool_add(std::uint64_t x) { g_pool_sum.fetch_add(x); }

TEST(Patterns, TaskPoolRunsTypedAndClosureTasks) {
  core::runtime rt(make_params());
  g_pool_sum = 0;
  rt.run([&] {
    patterns::task_pool pool(rt, full_span(rt));
    for (std::uint64_t i = 1; i <= 10; ++i) pool.submit<&pool_add>(i);
    pool.submit([] { g_pool_sum.fetch_add(100); });
    pool.wait();
    EXPECT_EQ(g_pool_sum.load(), 155u);  // 55 typed + 100 closure
  });
  rt.stop();
}

TEST(Patterns, TerminationWaitsForTrackedGrandchildren) {
  core::runtime rt(make_params());
  std::atomic<bool> grandchild_ran{false};
  rt.run([&] {
    patterns::task_pool pool(rt, full_span(rt));
    pool.submit([&] {
      // A task extends the pool's own tracked tree: wait() must not fire
      // until this late grandchild retires too.
      pool.proc().spawn_any([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        grandchild_ran = true;
      });
    });
    pool.wait();
    EXPECT_TRUE(grandchild_ran.load());
  });
  rt.stop();
}

// ----------------------------------------------------------------- nesting

std::atomic<std::uint64_t> g_nested_sum{0};

std::uint64_t pass_through(std::uint64_t n) { return n; }
void nested_mr_stage(std::uint64_t n) {
  core::runtime& rt = core::this_locality()->rt();
  std::vector<gas::locality_id> span;
  for (std::size_t i = 0; i < rt.num_localities(); ++i) {
    span.push_back(static_cast<gas::locality_id>(i));
  }
  const std::uint64_t s = patterns::map_reduce<&iota_sum, &add_u64>(
      rt, std::move(span), n, 3, /*ctx=*/0, /*nested=*/true);
  g_nested_sum.fetch_add(s);
}

TEST(Patterns, MapReduceNestsInsideAPipelineStage) {
  core::runtime rt(make_params());
  g_nested_sum = 0;
  const auto nested_before =
      patterns::pattern_counters::nested_patterns.load();
  rt.run([&] {
    patterns::pipeline<&pass_through, &nested_mr_stage> pipe(
        rt, full_span(rt), 4);
    std::uint64_t expect = 0;
    for (const std::uint64_t n : {8u, 9u, 10u}) {
      pipe.push(n);
      expect += n * (n - 1) / 2;  // sum(0..n-1)
    }
    pipe.close();
    EXPECT_EQ(g_nested_sum.load(), expect);
  });
  EXPECT_EQ(
      patterns::pattern_counters::nested_patterns.load() - nested_before,
      3u);
  rt.stop();
}

// ---------------------------------------------------------------- counters

TEST(Patterns, CountersAreRegisteredAndLive) {
  core::runtime rt(make_params());
  for (const char* path :
       {"runtime/patterns/pipelines", "runtime/patterns/pipeline_items",
        "runtime/patterns/map_reduce_jobs", "runtime/patterns/map_tasks",
        "runtime/patterns/pool_tasks", "runtime/patterns/nested"}) {
    EXPECT_TRUE(rt.introspection().read(path).has_value()) << path;
  }
  const auto pipelines_before =
      rt.introspection().read("runtime/patterns/pipelines").value();
  const auto items_before =
      rt.introspection().read("runtime/patterns/pipeline_items").value();
  rt.run([&] {
    patterns::pipeline<&double_it, &record_it> pipe(rt, full_span(rt), 4);
    pipe.push(1);
    pipe.push(2);
    pipe.close();
  });
  EXPECT_EQ(
      rt.introspection().read("runtime/patterns/pipelines").value(),
      pipelines_before + 1);
  EXPECT_EQ(
      rt.introspection().read("runtime/patterns/pipeline_items").value(),
      items_before + 2);
  rt.stop();
}

}  // namespace
