// Unit tests: discrete-event engine, simulated resources, and the fabric.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "net/fabric.hpp"
#include "sim/engine.hpp"

namespace {

using namespace px;

// ----------------------------------------------------------------- engine

TEST(SimEngine, FiresInTimeThenSequenceOrder) {
  sim::engine eng;
  std::vector<int> order;
  eng.schedule_at(10 * sim::ns, [&] { order.push_back(2); });
  eng.schedule_at(5 * sim::ns, [&] { order.push_back(1); });
  eng.schedule_at(10 * sim::ns, [&] { order.push_back(3); });  // same time
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(eng.now(), 10 * sim::ns);
}

TEST(SimEngine, EventsMayScheduleEvents) {
  sim::engine eng;
  int fired = 0;
  eng.schedule_after(1 * sim::ns, [&] {
    ++fired;
    eng.schedule_after(2 * sim::ns, [&] { ++fired; });
  });
  EXPECT_EQ(eng.run(), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(eng.now(), 3 * sim::ns);
}

TEST(SimEngine, RunUntilStopsAtDeadline) {
  sim::engine eng;
  int fired = 0;
  eng.schedule_at(5 * sim::ns, [&] { ++fired; });
  eng.schedule_at(15 * sim::ns, [&] { ++fired; });
  eng.run_until(10 * sim::ns);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(eng.now(), 10 * sim::ns);
  EXPECT_EQ(eng.pending(), 1u);
}

TEST(SimEngine, DeterministicAcrossRuns) {
  auto trace = [] {
    sim::engine eng;
    std::vector<sim::time_ps> stamps;
    for (int i = 0; i < 50; ++i) {
      eng.schedule_at(static_cast<sim::time_ps>((i * 37) % 17) * sim::ns,
                      [&, i] { stamps.push_back(eng.now() + i); });
    }
    eng.run();
    return stamps;
  };
  EXPECT_EQ(trace(), trace());
}

// --------------------------------------------------------------- resource

TEST(SimResource, SerializesBeyondCapacity) {
  sim::engine eng;
  sim::resource r(eng, 2);
  std::vector<sim::time_ps> completions;
  for (int i = 0; i < 4; ++i) {
    r.use(10 * sim::ns, [&] { completions.push_back(eng.now()); });
  }
  eng.run();
  // Two run [0,10), two queue and run [10,20).
  ASSERT_EQ(completions.size(), 4u);
  EXPECT_EQ(completions[0], 10 * sim::ns);
  EXPECT_EQ(completions[1], 10 * sim::ns);
  EXPECT_EQ(completions[2], 20 * sim::ns);
  EXPECT_EQ(completions[3], 20 * sim::ns);
}

TEST(SimResource, FifoGrantOrder) {
  sim::engine eng;
  sim::resource r(eng, 1);
  std::vector<int> grants;
  for (int i = 0; i < 3; ++i) {
    r.acquire([&, i] {
      grants.push_back(i);
      eng.schedule_after(1 * sim::ns, [&r] { r.release(); });
    });
  }
  eng.run();
  EXPECT_EQ(grants, (std::vector<int>{0, 1, 2}));
}

TEST(SimResource, BusyTimeTracksUtilization) {
  sim::engine eng;
  sim::resource r(eng, 1);
  r.use(30 * sim::ns, [] {});
  eng.run();
  EXPECT_EQ(r.busy_time(), 30 * sim::ns);
  EXPECT_EQ(r.total_grants(), 1u);
}

// ----------------------------------------------------------------- fabric

TEST(Fabric, DeliversToHandler) {
  net::fabric_params p;
  p.endpoints = 2;
  net::fabric f(p);
  std::atomic<int> got{0};
  f.set_handler(1, [&](net::message& m) {
    EXPECT_EQ(m.source, 0u);
    EXPECT_EQ(m.payload.size(), 3u);
    got.fetch_add(1);
  });
  f.set_handler(0, [](net::message&) {});
  f.send(net::message{0, 1, 0, std::vector<std::byte>(3)});
  f.drain();
  EXPECT_EQ(got.load(), 1);
}

TEST(Fabric, ImposesConfiguredLatency) {
  net::fabric_params p;
  p.endpoints = 2;
  p.base_latency_ns = 2'000'000;  // 2ms, comfortably measurable
  net::fabric f(p);
  f.set_handler(0, [](net::message&) {});
  std::atomic<bool> got{false};
  f.set_handler(1, [&](net::message&) { got.store(true); });
  const auto start = std::chrono::steady_clock::now();
  f.send(net::message{0, 1, 0, {}});
  f.drain();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_TRUE(got.load());
  EXPECT_GE(std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
                .count(),
            1900);
}

TEST(Fabric, ModelLatencyReflectsTopologyAndBandwidth) {
  net::fabric_params p;
  p.endpoints = 16;
  p.base_latency_ns = 100;
  p.per_hop_ns = 50;
  p.bytes_per_ns = 2.0;
  p.topology = net::topology_kind::mesh2d;
  net::fabric f(p);
  // mesh 4x4: 0 -> 15 is 3+3=6 hops; 1000 bytes at 2 B/ns adds 500ns.
  EXPECT_EQ(f.model_latency_ns(0, 15, 1000), 100u + 6u * 50u + 500u);
  EXPECT_EQ(f.model_latency_ns(0, 0, 0), 100u);
}

TEST(Fabric, TopologyHopCounts) {
  using net::topology_hops;
  using net::topology_kind;
  EXPECT_EQ(topology_hops(topology_kind::crossbar, 64, 3, 60), 1u);
  EXPECT_EQ(topology_hops(topology_kind::crossbar, 64, 3, 3), 0u);
  // 8x8 mesh: (0,0) -> (7,7) = 14 hops.
  EXPECT_EQ(topology_hops(topology_kind::mesh2d, 64, 0, 63), 14u);
  // vortex: log2(64) = 6 levels.
  EXPECT_EQ(topology_hops(topology_kind::vortex, 64, 0, 63), 6u);
}

TEST(Fabric, ManyMessagesAllArriveAcrossEndpoints) {
  net::fabric_params p;
  p.endpoints = 4;
  p.base_latency_ns = 1000;
  p.jitter_ns = 2000;  // force reordering
  net::fabric f(p);
  std::atomic<int> got{0};
  for (unsigned i = 0; i < 4; ++i) {
    f.set_handler(i, [&](net::message&) { got.fetch_add(1); });
  }
  for (int k = 0; k < 500; ++k) {
    f.send(net::message{static_cast<net::endpoint_id>(k % 4),
                        static_cast<net::endpoint_id>((k + 1) % 4), 0, {}});
  }
  f.drain();
  EXPECT_EQ(got.load(), 500);
  EXPECT_EQ(f.stats(0).messages_sent, 125u);
  EXPECT_EQ(f.latency_histogram().count(), 500u);
}

TEST(Fabric, StatsCountBytes) {
  net::fabric_params p;
  p.endpoints = 2;
  net::fabric f(p);
  f.set_handler(0, [](net::message&) {});
  f.set_handler(1, [](net::message&) {});
  f.send(net::message{0, 1, 0, std::vector<std::byte>(100)});
  f.send(net::message{0, 1, 0, std::vector<std::byte>(20)});
  f.drain();
  EXPECT_EQ(f.stats(0).bytes_sent, 120u);
  EXPECT_EQ(f.stats(1).messages_received, 2u);
}

TEST(Fabric, BatchedMessageCountsParcelsNotFrames) {
  net::fabric_params p;
  p.endpoints = 2;
  net::fabric f(p);
  f.set_handler(0, [](net::message&) {});
  std::atomic<std::uint32_t> units_seen{0};
  f.set_handler(1, [&](net::message& m) { units_seen.store(m.units); });
  net::message m{0, 1, 0, std::vector<std::byte>(64)};
  m.units = 5;  // one frame carrying five coalesced parcels
  f.send(std::move(m));
  f.drain();
  EXPECT_EQ(units_seen.load(), 5u);
  EXPECT_EQ(f.messages_sent_total(), 5u);  // quiescence counts parcels
  EXPECT_EQ(f.in_flight(), 0u);
  EXPECT_EQ(f.stats(0).messages_sent, 1u);  // wire stats count frames
  EXPECT_EQ(f.stats(0).parcels_sent, 5u);
  EXPECT_EQ(f.latency_histogram().count(), 5u);  // one sample per parcel
}

TEST(Fabric, PayloadBuffersAreRecycled) {
  net::fabric_params p;
  p.endpoints = 2;
  net::fabric f(p);
  f.set_handler(0, [](net::message&) {});
  f.set_handler(1, [](net::message&) {});  // decodes in place, never steals
  for (int round = 0; round < 50; ++round) {
    auto buf = f.pool().acquire();
    buf.resize(256);
    f.send(net::message{0, 1, 0, std::move(buf)});
    f.drain();  // round-trip one at a time so the pool sees each release
  }
  const auto st = f.pool().stats();
  EXPECT_EQ(st.acquires, 50u);
  // After the first allocation warms the pool, every acquire must hit.
  EXPECT_GE(st.hits, 48u);
  EXPECT_GE(st.releases, 49u);
}

TEST(FabricDeath, SendToOutOfRangeEndpointAsserts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  net::fabric_params p;
  p.endpoints = 2;
  net::fabric f(p);
  f.set_handler(0, [](net::message&) {});
  f.set_handler(1, [](net::message&) {});
  EXPECT_DEATH(f.send(net::message{0, 7, 0, {}}), "dest out of range");
  EXPECT_DEATH(f.send(net::message{9, 1, 0, {}}), "source out of range");
}

TEST(FabricDeath, SetHandlerAfterTrafficAsserts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  net::fabric_params p;
  p.endpoints = 2;
  net::fabric f(p);
  f.set_handler(0, [](net::message&) {});
  f.set_handler(1, [](net::message&) {});
  f.send(net::message{0, 1, 0, {}});
  f.drain();
  EXPECT_DEATH(f.set_handler(1, [](net::message&) {}),
               "set_handler after traffic started");
}

}  // namespace
