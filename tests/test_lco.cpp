// Unit tests: LCOs — futures, gates, and-gates, dataflow, semaphores,
// mutexes, barriers — including the depleted-thread suspension paths.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "lco/lco.hpp"
#include "threads/scheduler.hpp"

namespace {

using namespace px;
using threads::scheduler;
using threads::scheduler_params;

class LcoOnScheduler : public ::testing::Test {
 protected:
  void SetUp() override {
    sched_ = std::make_unique<scheduler>(scheduler_params{.workers = 3});
    sched_->start();
  }
  void TearDown() override {
    sched_->wait_quiescent();
    sched_->stop();
  }
  std::unique_ptr<scheduler> sched_;
};

// ----------------------------------------------------------------- future

TEST_F(LcoOnScheduler, FutureDeliversValueToDepletedThread) {
  lco::promise<int> prom;
  auto fut = prom.get_future();
  std::atomic<int> got{0};
  sched_->spawn([&, fut] { got.store(fut.get()); });
  // Let the thread park first (best effort), then satisfy.
  sched_->spawn([&, prom]() mutable { prom.set_value(99); });
  sched_->wait_quiescent();
  EXPECT_EQ(got.load(), 99);
}

TEST_F(LcoOnScheduler, ManyWaitersAllWake) {
  lco::promise<int> prom;
  auto fut = prom.get_future();
  std::atomic<int> sum{0};
  for (int i = 0; i < 50; ++i) {
    sched_->spawn([&, fut] { sum.fetch_add(fut.get()); });
  }
  prom.set_value(2);  // set from the main OS thread
  sched_->wait_quiescent();
  EXPECT_EQ(sum.load(), 100);
}

TEST(Future, ReadyFutureNeedsNoScheduler) {
  auto fut = lco::make_ready_future<int>(7);
  EXPECT_TRUE(fut.is_ready());
  EXPECT_EQ(fut.get(), 7);
}

TEST(Future, VoidFuture) {
  lco::promise<void> prom;
  auto fut = prom.get_future();
  EXPECT_FALSE(fut.is_ready());
  prom.set_value();
  fut.get();
  EXPECT_TRUE(fut.is_ready());
}

TEST(Future, OsThreadWaitSpins) {
  lco::promise<int> prom;
  auto fut = prom.get_future();
  std::thread setter([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    prom.set_value(1);
  });
  EXPECT_EQ(fut.get(), 1);  // blocking wait on a plain OS thread
  setter.join();
}

TEST(Future, OnReadyRunsInlineWhenAlreadySet) {
  auto fut = lco::make_ready_future<int>(3);
  int seen = 0;
  fut.on_ready([&] { seen = fut.get(); });
  EXPECT_EQ(seen, 3);
}

// --------------------------------------------------------------- and_gate

TEST(AndGate, FiresExactlyAtExpectedCount) {
  lco::and_gate gate(3);
  int fired = 0;
  gate.when_ready([&] { ++fired; });
  gate.signal();
  gate.signal();
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(gate.remaining(), 1u);
  gate.signal();
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(gate.ready());
}

TEST(AndGate, ZeroExpectedIsBornReady) {
  lco::and_gate gate(0);
  EXPECT_TRUE(gate.ready());
}

// --------------------------------------------------------------- dataflow

TEST_F(LcoOnScheduler, DataflowCombinesTwoInputs) {
  lco::promise<int> pa, pb;
  auto fc = lco::dataflow([](int a, int b) { return a * b; },
                          pa.get_future(), pb.get_future());
  EXPECT_FALSE(fc.is_ready());
  pa.set_value(6);
  EXPECT_FALSE(fc.is_ready());
  pb.set_value(7);
  EXPECT_TRUE(fc.is_ready());
  EXPECT_EQ(fc.get(), 42);
}

TEST_F(LcoOnScheduler, DataflowChainsWithoutBlocking) {
  // A 3-stage dataflow pipeline wired before any input exists.
  lco::promise<int> src;
  auto s1 = lco::dataflow([](int x) { return x + 1; }, src.get_future());
  auto s2 = lco::dataflow([](int x) { return x * 2; }, s1);
  auto s3 = lco::dataflow([](int x) { return x - 3; }, s2);
  src.set_value(10);
  EXPECT_EQ(s3.get(), 19);
}

TEST_F(LcoOnScheduler, WhenAllWaitsForEveryInput) {
  std::vector<lco::promise<int>> proms(8);
  std::vector<lco::future<int>> futs;
  for (auto& p : proms) futs.push_back(p.get_future());
  auto all = lco::when_all(futs);
  for (std::size_t i = 0; i + 1 < proms.size(); ++i) {
    proms[i].set_value(static_cast<int>(i));
    EXPECT_FALSE(all.is_ready());
  }
  proms.back().set_value(0);
  EXPECT_TRUE(all.is_ready());
}

// -------------------------------------------------------------- semaphore

TEST_F(LcoOnScheduler, SemaphoreBoundsConcurrency) {
  lco::counting_semaphore sem(2);
  std::atomic<int> inside{0};
  std::atomic<int> peak{0};
  for (int i = 0; i < 20; ++i) {
    sched_->spawn([&] {
      sem.acquire();
      const int now = inside.fetch_add(1) + 1;
      int prev = peak.load();
      while (prev < now && !peak.compare_exchange_weak(prev, now)) {
      }
      scheduler::yield();
      inside.fetch_sub(1);
      sem.release();
    });
  }
  sched_->wait_quiescent();
  EXPECT_LE(peak.load(), 2);
  EXPECT_EQ(sem.value(), 2);
}

TEST_F(LcoOnScheduler, SemaphoreTryAcquire) {
  lco::counting_semaphore sem(1);
  EXPECT_TRUE(sem.try_acquire());
  EXPECT_FALSE(sem.try_acquire());
  sem.release();
  EXPECT_TRUE(sem.try_acquire());
  sem.release();
}

// ------------------------------------------------------------------ mutex

TEST_F(LcoOnScheduler, MutexProtectsCriticalSection) {
  lco::mutex mtx;
  std::int64_t counter = 0;
  for (int i = 0; i < 100; ++i) {
    sched_->spawn([&] {
      for (int k = 0; k < 100; ++k) {
        std::lock_guard lock(mtx);
        // Unsynchronized increment would race; the LCO mutex serializes.
        counter += 1;
      }
    });
  }
  sched_->wait_quiescent();
  EXPECT_EQ(counter, 10000);
}

// ---------------------------------------------------------------- barrier

TEST_F(LcoOnScheduler, BarrierReleasesAllParties) {
  constexpr int kParties = 8;
  lco::barrier bar(kParties);
  std::atomic<int> before{0};
  std::atomic<int> after_min_check{0};
  for (int i = 0; i < kParties; ++i) {
    sched_->spawn([&] {
      before.fetch_add(1);
      bar.arrive_and_wait();
      // Everyone arrived before anyone proceeds.
      after_min_check.fetch_add(before.load() == kParties ? 1 : 0);
    });
  }
  sched_->wait_quiescent();
  EXPECT_EQ(after_min_check.load(), kParties);
  EXPECT_EQ(bar.generation(), 1u);
}

TEST_F(LcoOnScheduler, BarrierIsReusableAcrossGenerations) {
  constexpr int kParties = 4;
  constexpr int kRounds = 16;
  lco::barrier bar(kParties);
  std::atomic<int> done{0};
  for (int i = 0; i < kParties; ++i) {
    sched_->spawn([&] {
      for (int r = 0; r < kRounds; ++r) bar.arrive_and_wait();
      done.fetch_add(1);
    });
  }
  sched_->wait_quiescent();
  EXPECT_EQ(done.load(), kParties);
  EXPECT_EQ(bar.generation(), static_cast<std::uint64_t>(kRounds));
}

// ------------------------------------------------------------ gate + misc

TEST_F(LcoOnScheduler, GateBlocksUntilOpened) {
  lco::gate g;
  std::atomic<int> passed{0};
  for (int i = 0; i < 10; ++i) {
    sched_->spawn([&] {
      g.wait();
      passed.fetch_add(1);
    });
  }
  EXPECT_EQ(passed.load(), 0);
  g.open();
  sched_->wait_quiescent();
  EXPECT_EQ(passed.load(), 10);
  g.open();  // idempotent
}

TEST_F(LcoOnScheduler, CountersTrackDepletedThreads) {
  const auto before = lco::lco_counters::depleted_threads_created.load();
  lco::gate g;
  for (int i = 0; i < 5; ++i) {
    sched_->spawn([&] { g.wait(); });
  }
  // Give threads a chance to park.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  g.open();
  sched_->wait_quiescent();
  EXPECT_GE(lco::lco_counters::depleted_threads_created.load(), before + 5);
}

}  // namespace
