// Flight recorder (src/trace/): rings, causal context, the parcel wire
// extension, the counter snapshot/delta helper, and the end-to-end shard
// dump — single-process and across real processes.
#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/action.hpp"
#include "core/runtime.hpp"
#include "distributed_helpers.hpp"
#include "parcel/parcel.hpp"
#include "trace/trace.hpp"

namespace {

using namespace px;
using core::runtime;
using core::runtime_params;

std::uint64_t trace_ping(std::uint64_t x) { return x + 1; }
PX_REGISTER_ACTION(trace_ping)

// ------------------------------------------------------------ shard reader

struct shard_event {
  std::int64_t ts_ns;
  std::uint64_t trace_id, span_id, parent_span, data;
  std::uint32_t kind, arg;
};

struct shard {
  std::uint32_t rank = 0;
  std::int64_t clock_offset_ns = 0;
  std::vector<shard_event> events;
  std::vector<std::pair<std::string, std::int64_t>> counter_deltas;
};

std::uint32_t rd_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t rd_u64(const std::uint8_t* p) {
  return static_cast<std::uint64_t>(rd_u32(p)) |
         (static_cast<std::uint64_t>(rd_u32(p + 4)) << 32);
}

// Parses a px_trace.<rank>.bin shard; fails the test on any structural
// problem (this is the C++ twin of tools/px_trace.py's reader).
bool read_shard(const std::string& path, shard& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::vector<std::uint8_t> buf;
  std::uint8_t tmp[4096];
  for (std::size_t n; (n = std::fread(tmp, 1, sizeof tmp, f)) > 0;) {
    buf.insert(buf.end(), tmp, tmp + n);
  }
  std::fclose(f);
  if (buf.size() < 24) return false;
  const std::uint8_t* p = buf.data();
  if (rd_u32(p) != trace::shard_magic) return false;
  if (rd_u32(p + 4) != trace::shard_version) return false;
  out.rank = rd_u32(p + 8);
  const std::uint32_t nrings = rd_u32(p + 12);
  out.clock_offset_ns = static_cast<std::int64_t>(rd_u64(p + 16));
  std::size_t off = 24;
  for (std::uint32_t r = 0; r < nrings; ++r) {
    if (off + 16 > buf.size()) return false;
    const std::uint64_t count = rd_u64(p + off + 8);
    off += 16;
    for (std::uint64_t i = 0; i < count; ++i) {
      if (off + 48 > buf.size()) return false;
      shard_event e;
      e.ts_ns = static_cast<std::int64_t>(rd_u64(p + off));
      e.trace_id = rd_u64(p + off + 8);
      e.span_id = rd_u64(p + off + 16);
      e.parent_span = rd_u64(p + off + 24);
      e.data = rd_u64(p + off + 32);
      e.kind = rd_u32(p + off + 40);
      e.arg = rd_u32(p + off + 44);
      out.events.push_back(e);
      off += 48;
    }
  }
  if (off + 4 > buf.size()) return false;
  const std::uint32_t ntrailer = rd_u32(p + off);
  off += 4;
  for (std::uint32_t i = 0; i < ntrailer; ++i) {
    if (off + 4 > buf.size()) return false;
    const std::uint32_t len = rd_u32(p + off);
    off += 4;
    if (off + len + 8 > buf.size()) return false;
    std::string cpath(reinterpret_cast<const char*>(p + off), len);
    off += len;
    const auto delta = static_cast<std::int64_t>(rd_u64(p + off));
    off += 8;
    out.counter_deltas.emplace_back(std::move(cpath), delta);
  }
  return off == buf.size();
}

std::size_t count_kind(const shard& s, trace::event_kind k) {
  std::size_t n = 0;
  for (const auto& e : s.events) {
    if (e.kind == static_cast<std::uint32_t>(k)) ++n;
  }
  return n;
}

// ------------------------------------------------------- ring + id basics

TEST(Trace, FullRingDropsInsteadOfBlocking) {
  auto& rec = trace::recorder::global();
  // 64 slots is the configure() floor; ask for exactly it.
  rec.configure(true, 64 * sizeof(trace::event), testing::TempDir(), 0);
  const std::uint64_t events0 = rec.events_total();
  const std::uint64_t drops0 = rec.drops_total();
  for (int i = 0; i < 100; ++i) {
    trace::emit(trace::event_kind::lco_fire, 1, 2, 0, i);
  }
  EXPECT_EQ(rec.events_total() - events0, 64u);
  EXPECT_EQ(rec.drops_total() - drops0, 36u);
  rec.configure(false, 0, "", 0);
}

TEST(Trace, IdsAreRankSalted) {
  auto& rec = trace::recorder::global();
  rec.configure(true, 1 << 16, testing::TempDir(), 3);
  const std::uint64_t a = trace::new_id();
  const std::uint64_t b = trace::new_id();
  EXPECT_NE(a, b);
  EXPECT_EQ(a >> 48, 4u);  // (rank + 1) << 48
  EXPECT_EQ(b >> 48, 4u);
  rec.configure(false, 0, "", 0);
}

TEST(Trace, ScopeInstallsAndRestoresContext) {
  const trace::context outer{11, 22};
  trace::set_current(outer);
  {
    trace::scope s(trace::context{33, 44});
    EXPECT_EQ(trace::current().trace_id, 33u);
    EXPECT_EQ(trace::current().span, 44u);
  }
  EXPECT_EQ(trace::current().trace_id, 11u);
  EXPECT_EQ(trace::current().span, 22u);
  trace::set_current(trace::context{});
}

TEST(Trace, DisabledEmitIsANoOp) {
  auto& rec = trace::recorder::global();
  rec.configure(false, 0, "", 0);
  const std::uint64_t before = rec.events_total();
  trace::emit(trace::event_kind::lco_wait, 1, 2, 0, 3);
  EXPECT_EQ(rec.events_total(), before);
}

// -------------------------------------------------------- wire extension

TEST(Trace, WireExtensionRoundTrips) {
  parcel::parcel p;
  p.destination = gas::gid::from_bits(0x1234567890ull);
  p.action = 7;
  p.source = 2;
  p.trace_id = 0xAABB;
  p.trace_span = 0xCCDD;
  p.arguments = util::to_bytes(std::uint64_t{42});

  std::vector<std::byte> wire;
  parcel::encode_into(wire, p);
  EXPECT_EQ(wire.size(), parcel::encoded_size(p));
  EXPECT_EQ(wire.size(),
            parcel::wire_header_bytes + parcel::trace_ext_bytes +
                p.arguments.size());

  const auto v = parcel::parcel_view::parse(wire);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->trace_id(), 0xAABBu);
  EXPECT_EQ(v->trace_span(), 0xCCDDu);
  EXPECT_EQ(v->destination().bits(), p.destination.bits());
  EXPECT_EQ(v->action(), p.action);
  EXPECT_EQ(util::from_bytes<std::uint64_t>(v->arguments()), 42u);

  const parcel::parcel copy = v->to_parcel();
  EXPECT_EQ(copy.trace_id, 0xAABBu);
  EXPECT_EQ(copy.trace_span, 0xCCDDu);
}

TEST(Trace, UntracedParcelIsByteIdenticalToLegacyFormat) {
  parcel::parcel p;
  p.destination = gas::gid::from_bits(99);
  p.action = 3;
  p.arguments = util::to_bytes(std::uint64_t{5});

  std::vector<std::byte> wire;
  parcel::encode_into(wire, p);
  // No extension, and the flags byte (offset 29) is zero: pre-extension
  // peers would parse this record unchanged.
  EXPECT_EQ(wire.size(), parcel::wire_header_bytes + p.arguments.size());
  EXPECT_EQ(std::to_integer<std::uint8_t>(wire[29]), 0u);

  const auto v = parcel::parcel_view::parse(wire);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->trace_id(), 0u);
  EXPECT_EQ(v->trace_span(), 0u);
}

TEST(Trace, UnknownWireFlagsAreRejected) {
  parcel::parcel p;
  p.destination = gas::gid::from_bits(99);
  p.action = 3;
  std::vector<std::byte> wire;
  parcel::encode_into(wire, p);
  wire[29] = std::byte{0x04};  // unknown flag bit (0x01 trace, 0x02 stats)
  EXPECT_FALSE(parcel::parcel_view::parse(wire).has_value());
  // A known flag with a record too short for its extension must also be
  // rejected, not read out of bounds.
  wire[29] = std::byte{0x01};
  EXPECT_FALSE(parcel::parcel_view::parse(wire).has_value());
  wire[29] = std::byte{0x02};
  EXPECT_FALSE(parcel::parcel_view::parse(wire).has_value());
}

TEST(Trace, ViewOfInMemoryParcelCarriesTraceFields) {
  parcel::parcel p;
  p.destination = gas::gid::from_bits(7);
  p.trace_id = 5;
  p.trace_span = 6;
  const auto v = parcel::parcel_view::of(p);
  EXPECT_EQ(v.trace_id(), 5u);
  EXPECT_EQ(v.trace_span(), 6u);
}

// --------------------------------------------------- snapshot/delta helper

TEST(Trace, RegistrySnapshotDelta) {
  using introspect::counter_sample;
  const std::vector<counter_sample> before = {{"a/x", 10}, {"b/y", 5}};
  const std::vector<counter_sample> after = {{"a/x", 17}, {"c/z", 3}};
  const auto d = introspect::registry::delta(before, after);
  ASSERT_EQ(d.size(), 3u);
  EXPECT_EQ(d[0].first, "a/x");
  EXPECT_EQ(d[0].second, 7);
  EXPECT_EQ(d[1].first, "b/y");
  EXPECT_EQ(d[1].second, -5);
  EXPECT_EQ(d[2].first, "c/z");
  EXPECT_EQ(d[2].second, 3);
}

TEST(Trace, RuntimeSnapshotIsSortedAndSampled) {
  runtime rt;  // sim backend, tracing off — snapshot works regardless
  const auto snap = rt.introspection().snapshot_all();
  ASSERT_FALSE(snap.empty());
  for (std::size_t i = 1; i < snap.size(); ++i) {
    EXPECT_LT(snap[i - 1].path, snap[i].path);
  }
  bool found = false;
  for (const auto& s : snap) {
    if (s.path == "runtime/loc0/parcels/sent") found = true;
  }
  EXPECT_TRUE(found);
}

// ----------------------------------------------------- end-to-end (sim)

TEST(Trace, SimRuntimeWritesShardWithCausalChain) {
  const std::string dir = testing::TempDir();
  const std::string shard_path = dir + "/px_trace.0.bin";
  std::remove(shard_path.c_str());

  runtime_params prm;
  prm.localities = 2;
  prm.trace = 1;
  prm.trace_dir = dir;
  {
    runtime rt(prm);
    rt.run([&] {
      for (int i = 0; i < 10; ++i) {
        auto fut = core::async<&trace_ping>(rt.locality_gid(1),
                                            static_cast<std::uint64_t>(i));
        EXPECT_EQ(fut.get(), static_cast<std::uint64_t>(i) + 1);
      }
    });
    // The counters are live while the runtime runs.
    const auto events = rt.introspection().read("runtime/loc0/trace/events");
    ASSERT_TRUE(events.has_value());
    EXPECT_GT(*events, 0u);
    const auto drops = rt.introspection().read("runtime/loc0/trace/drops");
    ASSERT_TRUE(drops.has_value());
    EXPECT_EQ(*drops, 0u);
    rt.stop();  // writes the shard
  }

  shard s;
  ASSERT_TRUE(read_shard(shard_path, s));
  EXPECT_EQ(s.rank, 0u);
  EXPECT_EQ(s.clock_offset_ns, 0);
  EXPECT_FALSE(s.events.empty());
  EXPECT_GE(count_kind(s, trace::event_kind::parcel_send), 10u);
  EXPECT_GE(count_kind(s, trace::event_kind::parcel_dispatch), 10u);
  EXPECT_GE(count_kind(s, trace::event_kind::fiber_start), 1u);
  EXPECT_GE(count_kind(s, trace::event_kind::fiber_end), 1u);
  EXPECT_GE(count_kind(s, trace::event_kind::lco_fire), 1u);

  // Causality: every send's (trace, span) pair reappears on a dispatch.
  std::size_t matched = 0;
  for (const auto& e : s.events) {
    if (e.kind != static_cast<std::uint32_t>(trace::event_kind::parcel_send))
      continue;
    ASSERT_NE(e.trace_id, 0u);
    for (const auto& d : s.events) {
      if (d.kind == static_cast<std::uint32_t>(
                        trace::event_kind::parcel_dispatch) &&
          d.trace_id == e.trace_id && d.span_id == e.span_id) {
        ++matched;
        break;
      }
    }
  }
  EXPECT_GE(matched, 10u);

  // The counter-delta trailer recorded the run's parcel movement.
  bool sent_delta = false;
  for (const auto& [path, delta] : s.counter_deltas) {
    if (path == "runtime/loc0/parcels/sent" && delta > 0) sent_delta = true;
  }
  EXPECT_TRUE(sent_delta);

  trace::recorder::global().configure(false, 0, "", 0);
}

TEST(Trace, UntracedRuntimeWritesNoShard) {
  const std::string dir = testing::TempDir();
  const std::string shard_path = dir + "/px_trace_off.marker";
  runtime_params prm;
  prm.localities = 2;
  prm.trace = 0;
  prm.trace_dir = dir;
  runtime rt(prm);
  rt.run([&] {
    auto fut = core::async<&trace_ping>(rt.locality_gid(1), 1ull);
    EXPECT_EQ(fut.get(), 2u);
  });
  const auto events = rt.introspection().read("runtime/loc0/trace/events");
  ASSERT_TRUE(events.has_value());
  EXPECT_EQ(*events, 0u);
  rt.stop();
  (void)shard_path;
}

// ---------------------------------------------- end-to-end (distributed)

// Every rank writes a shard; rank 1's shard holds the dispatch half of
// rank 0's (trace, span) send keys — the cross-process flow edge the
// Perfetto merge draws arrows from.  Tracing is enabled through the
// environment (children inherit it), exactly how a user would run it.
TEST(Distributed, TraceShardsCarryCrossRankFlows) {
  constexpr int kPings = 20;
  if (px::test::is_rank_child()) {
    runtime rt;
    rt.run([&] {
      if (rt.rank() != 0) return;
      for (int i = 0; i < kPings; ++i) {
        auto fut = core::async<&trace_ping>(rt.locality_gid(1),
                                            static_cast<std::uint64_t>(i));
        EXPECT_EQ(fut.get(), static_cast<std::uint64_t>(i) + 1);
      }
    });
    rt.stop();
    return;
  }
  const std::string dir =
      testing::TempDir() + "/px_trace_dist_" + std::to_string(::getpid());
  if (::mkdir(dir.c_str(), 0755) != 0) {
    ASSERT_EQ(errno, EEXIST) << "mkdir " << dir;
    std::remove((dir + "/px_trace.0.bin").c_str());
    std::remove((dir + "/px_trace.1.bin").c_str());
  }
  ::setenv("PX_TRACE", "1", 1);
  ::setenv("PX_TRACE_DIR", dir.c_str(), 1);
  px::test::run_ranks(2, "Distributed.TraceShardsCarryCrossRankFlows");
  ::unsetenv("PX_TRACE");
  ::unsetenv("PX_TRACE_DIR");

  shard s0, s1;
  ASSERT_TRUE(read_shard(dir + "/px_trace.0.bin", s0));
  ASSERT_TRUE(read_shard(dir + "/px_trace.1.bin", s1));
  EXPECT_EQ(s0.rank, 0u);
  EXPECT_EQ(s1.rank, 1u);
  // Rank 0 is the clock reference; rank 1 sampled a real offset (any
  // value, but the field must have survived the trip to disk).
  EXPECT_EQ(s0.clock_offset_ns, 0);

  EXPECT_GE(count_kind(s0, trace::event_kind::parcel_send),
            static_cast<std::size_t>(kPings));
  EXPECT_GE(count_kind(s0, trace::event_kind::wire_tx), 1u);
  EXPECT_GE(count_kind(s1, trace::event_kind::wire_rx), 1u);
  EXPECT_GE(count_kind(s1, trace::event_kind::parcel_dispatch),
            static_cast<std::size_t>(kPings));

  // Cross-rank causal edges: sends on rank 0 whose (trace, span) key
  // reappears as a dispatch on rank 1.
  std::size_t cross = 0;
  for (const auto& e : s0.events) {
    if (e.kind != static_cast<std::uint32_t>(trace::event_kind::parcel_send))
      continue;
    for (const auto& d : s1.events) {
      if (d.kind == static_cast<std::uint32_t>(
                        trace::event_kind::parcel_dispatch) &&
          d.trace_id == e.trace_id && d.span_id == e.span_id) {
        ++cross;
        break;
      }
    }
  }
  EXPECT_GE(cross, static_cast<std::size_t>(kPings));
}

}  // namespace
